// Hook-discipline fixture: a core package ("bus") calling the tracer.
// Emit must sit behind an `if tr != nil` (or early-return) guard on the
// same receiver expression; metric handles are nil-receiver-safe and
// need no guard.
package bus

import (
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Bus is a toy arbiter carrying observability hooks like the real one.
type Bus struct {
	Trace  *trace.Tracer
	Grants *metrics.Counter
}

// Grant emits without any guard.
func (b *Bus) Grant(cycle uint64) {
	b.Trace.Emit(trace.Event{Cycle: cycle}) // want "hooks/guard: b\.Trace\.Emit called without an enclosing `if b\.Trace != nil` guard"
}

// GrantGuarded wraps the emission in the PR-1 pattern.
func (b *Bus) GrantGuarded(cycle uint64) {
	if b.Trace != nil {
		b.Trace.Emit(trace.Event{Cycle: cycle})
	}
}

// GrantEarlyReturn proves the guard by returning when the tracer is nil.
func (b *Bus) GrantEarlyReturn(cycle uint64) {
	if b.Trace == nil {
		return
	}
	b.Trace.Emit(trace.Event{Cycle: cycle})
}

// GrantWrongReceiver guards one tracer but emits on another.
func (b *Bus) GrantWrongReceiver(other *trace.Tracer, cycle uint64) {
	if b.Trace != nil {
		other.Emit(trace.Event{Cycle: cycle}) // want "hooks/guard: other\.Emit called without an enclosing `if other != nil` guard"
	}
}

// GrantClosure shows that a guard outside a closure does not protect the
// call inside it: the closure may run later, against different state.
func (b *Bus) GrantClosure(cycle uint64) func() {
	if b.Trace != nil {
		return func() {
			b.Trace.Emit(trace.Event{Cycle: cycle}) // want "hooks/guard: b\.Trace\.Emit called without an enclosing `if b\.Trace != nil` guard"
		}
	}
	return func() {}
}

// Count needs no guard: metric handles are nil-receiver-safe no-ops and
// their arguments are cheap.
func (b *Bus) Count() {
	b.Grants.Inc()
}
