// Intraprocedural control-flow graphs for the dataflow analyzers
// (lockflow, ctxflow). Blocks hold statements — plus branch-condition
// expressions, which get their own nodes so short-circuit evaluation
// (&&, ||) branches precisely — in evaluation order. Edges cover
// if/else, for/range (break, continue, labeled or not), switch and
// type-switch (including fallthrough), select, goto, and early
// returns; panic calls terminate a path like return does. Deferred
// calls are collected on the graph: they run on every exit path, which
// is exactly how the lock-release analysis consumes them.
//
// The builder is syntactic and total: unreachable statements still get
// (predecessor-free) blocks, so analyzers see every node even when the
// fixpoint never reaches it.

package lint

import (
	"go/ast"
	"go/token"
)

// CFG is one function body's control-flow graph.
type CFG struct {
	Blocks []*Block
	// Entry is the function entry; Exit is the single synthetic exit
	// every return (and the fall-off-the-end path) feeds.
	Entry, Exit *Block
	// Defers are the function's deferred calls, in source order. They
	// execute on every path into Exit (normal or panicking).
	Defers []*ast.CallExpr
}

// Block is one straight-line run of nodes. Nodes are ast.Stmt except
// for branch conditions, which appear as the bare ast.Expr evaluated
// at the end of the block.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// succ appends t to b's successors (deduplicated).
func (b *Block) succ(t *Block) {
	for _, s := range b.Succs {
		if s == t {
			return
		}
	}
	b.Succs = append(b.Succs, t)
}

// branchTarget is one enclosing construct a break/continue can reach.
type branchTarget struct {
	label string // enclosing statement label, "" if unlabeled
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	g *CFG
	// cur is the block under construction; nil after a terminator
	// (return, break, panic, ...) until the next statement starts a
	// fresh — unreachable — block.
	cur       *Block
	breaks    []branchTarget
	continues []branchTarget
	labels    map[string]*Block
	gotos     []pendingGoto
	// pendingLabel is the label wrapping the next loop/switch/select,
	// consumed by that construct to register labeled break/continue.
	pendingLabel string
}

// FuncCFG builds the CFG of a function body. It accepts the body of a
// FuncDecl or FuncLit; a nil body yields an empty graph.
func FuncCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		b.cur.succ(g.Exit)
	}
	for _, pg := range b.gotos {
		if t, ok := b.labels[pg.label]; ok {
			pg.from.succ(t)
		}
	}
	return g
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// here returns the block under construction, starting an unreachable
// one if the previous statement terminated the path.
func (b *cfgBuilder) here() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) { b.here().Nodes = append(b.here().Nodes, n) }

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// cond wires the evaluation of a branch condition from the current
// block to t (true) and f (false), splitting short-circuit operators
// into their own blocks so `mu.Lock() if a && block() {...}` analyses
// see that block() only evaluates when a held. Leaves b.cur nil.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch x := unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	blk := b.here()
	blk.Nodes = append(blk.Nodes, e)
	blk.succ(t)
	blk.succ(f)
	b.cur = nil
}

// takeLabel consumes the label wrapping the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	b.continues = append(b.continues, branchTarget{label: label, block: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// target resolves a break/continue destination, innermost-first.
func target(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Give the labeled statement its own block so goto can land on
		// it, and hand the label to the wrapped construct for labeled
		// break/continue.
		lb := b.newBlock()
		if b.cur != nil {
			b.cur.succ(lb)
		}
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.here().succ(b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := target(b.breaks, label); t != nil {
				b.here().succ(t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := target(b.continues, label); t != nil {
				b.here().succ(t)
			}
			b.cur = nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.here(), label: label})
			b.cur = nil
		case token.FALLTHROUGH:
			// Wired by the enclosing switch; the statement is recorded
			// and the case-body edge added there.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		then := b.newBlock()
		after := b.newBlock()
		elseB := after
		if s.Else != nil {
			elseB = b.newBlock()
		}
		b.cond(s.Cond, then, elseB)
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.succ(after)
		}
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			if b.cur != nil {
				b.cur.succ(after)
			}
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.here().succ(head)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, after)
		} else {
			head.succ(body)
			b.cur = nil
		}
		b.pushLoop(label, after, cont)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.succ(cont)
		}
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			if b.cur != nil {
				b.cur.succ(head)
			}
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.here().succ(head)
		head.Nodes = append(head.Nodes, s) // the range expr evaluates here
		head.succ(body)
		head.succ(after)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.succ(head)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.here()
		head.Nodes = append(head.Nodes, s) // a select with no default blocks here
		after := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{label: label, block: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			head.succ(blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.cur.succ(after)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(s.Body.List) == 0 {
			head.succ(after)
		}
		b.cur = after

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s.Call)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				b.here().succ(b.g.Exit)
				b.cur = nil
			}
		}

	case nil:
		// e.g. an absent init statement routed here by a caller

	default:
		// Assign, Send, IncDec, Go, Decl, Empty, ...: straight-line.
		b.add(s)
	}
}

// switchStmt builds expression and type switches: head evaluates the
// init/tag, every case body is a successor of the head (case-expression
// evaluation order adds nothing the analyzers care about), fallthrough
// chains case bodies, and break (labeled or not) exits to after.
func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	var init ast.Stmt
	var tag ast.Node
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, body = s.Init, s.Body
		if s.Tag != nil {
			tag = s.Tag
		}
	case *ast.TypeSwitchStmt:
		init, body = s.Init, s.Body
		tag = s.Assign
	}
	if init != nil {
		b.stmt(init)
	}
	head := b.here()
	if tag != nil {
		head.Nodes = append(head.Nodes, tag)
	}
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: after})

	clauses := body.List
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		bodies[i] = b.newBlock()
		head.succ(bodies[i])
		if cc, ok := clauses[i].(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.succ(after)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			if fallsThrough(cc.Body) && i+1 < len(bodies) {
				b.cur.succ(bodies[i+1])
			} else {
				b.cur.succ(after)
			}
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// fallsThrough reports whether a case body ends in fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}
