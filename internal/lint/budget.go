// The runtime half of the hwbudget analyzer: BudgetReport instantiates
// every registered filter, prefetch-generator, and instruction-prefetch
// backend from the default configuration and measures its storage by
// reflection — unexported fields are simulated hardware state, exported
// fields are observability counters (the repo-wide convention hwbudget
// enforces statically). The bit counts are the Go representation of the
// state, so they are an upper bound on a real implementation (a 2-bit
// counter stored in a uint8 reports 8 bits); what the report guarantees
// is that the bound is finite and fixed at construction. `pflint
// -budget` prints it, and docs/LINTING.md carries the table as the
// realizability story for the zoo — and the on-ramp to the ROADMAP's
// bit-packed SoA rewrite, which squeezes these same fields down to
// their architected widths.

package lint

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/frontend"
	"repro/internal/prefetch"
	"repro/internal/xrand"
)

// BudgetLine is one backend's storage accounting.
type BudgetLine struct {
	Kind        string `json:"kind"` // "filter" | "generator" | "iprefetch"
	Name        string `json:"name"`
	StateBits   uint64 `json:"state_bits"`
	CounterBits uint64 `json:"counter_bits"`
	// Notes records anything the bit count cannot express: shared
	// references that were skipped, construction errors, maps.
	Notes []string `json:"notes,omitempty"`
}

// BudgetReport measures every registered backend constructed from the
// default configuration. Lines are sorted by kind, then name.
func BudgetReport() []BudgetLine {
	var lines []BudgetLine
	cfg := config.Default()

	for _, kind := range filter.Kinds() {
		line := BudgetLine{Kind: "filter", Name: kind}
		f, err := newFilterBackend(kind, cfg.Filter)
		if err != nil {
			line.Notes = append(line.Notes, "construction failed: "+err.Error())
		} else {
			measure(f, &line)
		}
		lines = append(lines, line)
	}

	// SDP keeps its per-line state in the L2 proper; the generator is
	// constructed over a default-geometry cache whose storage is not
	// charged to the backend (the shadow fields ride the existing tags).
	l2, l2err := cache.New(cfg.L2, xrand.New(cfg.Seed))
	env := prefetch.Env{L2: l2}
	for _, kind := range prefetch.Kinds() {
		line := BudgetLine{Kind: "generator", Name: kind}
		// WithGenerator installs the backend's default table budgets —
		// the same cell configuration the sweep matrices run.
		pcfg := cfg.WithGenerator(config.PrefetchKind(kind)).Prefetch
		g, err := prefetch.New(config.PrefetchKind(kind), pcfg, env)
		if err == nil && l2err != nil {
			err = l2err
		}
		if err != nil {
			line.Notes = append(line.Notes, "construction failed: "+err.Error())
		} else {
			measure(g, &line)
		}
		lines = append(lines, line)
	}

	for _, kind := range frontend.Kinds() {
		line := BudgetLine{Kind: "iprefetch", Name: kind}
		fcfg := cfg.WithIPrefetch(config.IPrefetchKind(kind)).Frontend
		ip, err := frontend.New(config.IPrefetchKind(kind), *fcfg)
		if err != nil {
			line.Notes = append(line.Notes, "construction failed: "+err.Error())
		} else {
			measure(ip, &line)
		}
		lines = append(lines, line)
	}

	sort.Slice(lines, func(i, j int) bool {
		if lines[i].Kind != lines[j].Kind {
			return lines[i].Kind < lines[j].Kind
		}
		return lines[i].Name < lines[j].Name
	})
	return lines
}

// newFilterBackend constructs one filter backend. The static filter's
// registry constructor refuses to run without a profile, so the report
// freezes an empty profile — the structure is the budget story, and an
// empty block set is exactly its hardware-relevant minimum.
func newFilterBackend(kind string, cfg config.FilterConfig) (core.Filter, error) {
	if kind == string(config.FilterStatic) {
		return core.NewProfileCollector("pa", core.PAKey).Freeze(0.5), nil
	}
	cfg.Kind = config.FilterKind(kind)
	return filter.New(cfg)
}

// measure walks one constructed backend.
func measure(backend any, line *BudgetLine) {
	v := reflect.ValueOf(backend)
	seen := map[uintptr]bool{}
	w := &budgetWalker{seen: seen}
	w.value(v, false, line)
	sort.Strings(line.Notes)
	line.Notes = dedupStrings(line.Notes)
}

type budgetWalker struct {
	seen map[uintptr]bool
}

// value adds v's bits to the line. counter is true once the walk has
// passed through an exported field: everything below an exported field
// is counter storage, everything else is state.
func (w *budgetWalker) value(v reflect.Value, counter bool, line *BudgetLine) {
	add := func(bits uint64) {
		if counter {
			line.CounterBits += bits
		} else {
			line.StateBits += bits
		}
	}
	switch v.Kind() {
	case reflect.Bool:
		add(1)
	case reflect.Int8, reflect.Uint8:
		add(8)
	case reflect.Int16, reflect.Uint16:
		add(16)
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		add(32)
	case reflect.Int64, reflect.Uint64, reflect.Int, reflect.Uint, reflect.Uintptr, reflect.Float64:
		add(64)
	case reflect.String:
		add(uint64(v.Len()) * 8)
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			w.value(v.Index(i), counter, line)
		}
	case reflect.Map:
		line.Notes = append(line.Notes,
			fmt.Sprintf("map state (%d entries at construction) — not a fixed budget", v.Len()))
	case reflect.Pointer:
		if v.IsNil() {
			return
		}
		if shared, note := sharedReference(v.Type().Elem()); shared {
			line.Notes = append(line.Notes, note)
			return
		}
		if w.seen[v.Pointer()] {
			return
		}
		w.seen[v.Pointer()] = true
		w.value(v.Elem(), counter, line)
	case reflect.Interface:
		if !v.IsNil() {
			w.value(v.Elem(), counter, line)
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			f := t.Field(i)
			w.value(v.Field(i), counter || f.PkgPath == "", line)
		}
	case reflect.Func, reflect.Chan:
		// A key function or callback is wiring, not storage.
	}
}

// sharedReference identifies pointer targets that are references into
// shared machinery rather than backend-owned storage.
func sharedReference(t reflect.Type) (bool, string) {
	path := t.PkgPath()
	switch {
	case strings.HasSuffix(path, "internal/cache"):
		return true, "holds a reference to the shared " + t.Name() + " (state rides its line metadata, not the backend)"
	case strings.HasSuffix(path, "internal/xrand"):
		return true, "holds a reference to the run's RNG"
	}
	return false, ""
}

// FormatBudget renders the report in the aligned text form `pflint
// -budget` prints and docs/LINTING.md embeds.
func FormatBudget(lines []BudgetLine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %12s %14s  %s\n", "KIND", "BACKEND", "STATE BITS", "COUNTER BITS", "NOTES")
	for _, l := range lines {
		fmt.Fprintf(&b, "%-10s %-12s %12d %14d  %s\n",
			l.Kind, l.Name, l.StateBits, l.CounterBits, strings.Join(l.Notes, "; "))
	}
	return b.String()
}

func dedupStrings(in []string) []string {
	out := in[:0]
	var prev string
	for i, s := range in {
		if i == 0 || s != prev {
			out = append(out, s)
		}
		prev = s
	}
	return out
}
