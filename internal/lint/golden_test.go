// Golden tests for the analyzer suite. Each fixture package under
// testdata/src carries `// want "regexp"` markers: every finding must
// match a marker on its line, and every marker must be matched by a
// finding. The fixtures are invisible to `go build ./...` (go list
// skips testdata for wildcard patterns) but load fine by explicit path,
// so the dirty code never pollutes the real tree.

package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// moduleRoot returns the repository root (the directory holding go.mod).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
	return root
}

// fixtureDirs enumerates the want-marker fixtures. The pragmas fixture
// is excluded: its findings sit on the pragma comments themselves, where
// a same-line marker cannot coexist with the directive (TestPragmaHygiene
// covers it with explicit expectations).
func fixtureDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && e.Name() != "pragmas" {
			out = append(out, e.Name())
		}
	}
	if len(out) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	return out
}

// expectation is one `// want "re"` marker.
type expectation struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantMarker = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// collectWants scans every .go file in dir for want markers.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			for _, m := range wantMarker.FindAllStringSubmatch(lineText, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s/%s:%d: bad want regexp %q: %v", dir, e.Name(), i+1, m[1], err)
				}
				out = append(out, &expectation{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return out
}

// TestAnalyzersGolden loads every fixture package and checks the
// produced findings against the want markers, in both directions.
func TestAnalyzersGolden(t *testing.T) {
	root := moduleRoot(t)
	dirs := fixtureDirs(t)
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./internal/lint/testdata/src/" + d
	}
	pkgs, err := Load(root, patterns...)
	if err != nil {
		t.Fatalf("Load fixtures: %v", err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("loaded %d packages, want %d (%v)", len(pkgs), len(dirs), patterns)
	}
	byName := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byName[filepath.Base(p.Dir)] = p
	}

	for _, dir := range dirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			p := byName[dir]
			if p == nil {
				t.Fatalf("fixture %s not loaded", dir)
			}
			wants := collectWants(t, filepath.Join("testdata", "src", dir))
			findings := Run([]*Package{p}, Analyzers())

			for _, f := range findings {
				msg := f.Rule + ": " + f.Msg
				matched := false
				for _, w := range wants {
					if w.matched || w.file != filepath.Base(f.Pos.Filename) || w.line != f.Pos.Line {
						continue
					}
					if w.re.MatchString(msg) {
						w.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding %s:%d: %s", filepath.Base(f.Pos.Filename), f.Pos.Line, msg)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re.String())
				}
			}
		})
	}
}

// TestPragmaHygiene checks the engine-level pragma findings against the
// directives in the pragmas fixture, located by scanning the source so
// the expectations survive edits to the file.
func TestPragmaHygiene(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := Load(root, "./internal/lint/testdata/src/pragmas")
	if err != nil {
		t.Fatalf("Load pragmas fixture: %v", err)
	}
	findings := Run(pkgs, Analyzers())

	src, err := os.ReadFile(filepath.Join("testdata", "src", "pragmas", "pragmas.go"))
	if err != nil {
		t.Fatal(err)
	}
	type exp struct {
		line int
		rule string
	}
	var expected []exp
	for i, lineText := range strings.Split(string(src), "\n") {
		line := i + 1
		switch text := strings.TrimSpace(lineText); {
		case text == "//pflint:allow":
			expected = append(expected, exp{line, RulePragmaMalformed})
		case text == "//pflint:allow errcheck":
			expected = append(expected, exp{line, RulePragmaMalformed})
		case strings.HasPrefix(text, "//pflint:allow nosuchrule"):
			expected = append(expected, exp{line, RulePragmaUnknown}, exp{line, RulePragmaUnused})
		case strings.HasPrefix(text, "//pflint:allow determinism/time"):
			expected = append(expected, exp{line, RulePragmaUnused})
		case strings.HasPrefix(text, "//pflint:frobnicate"):
			expected = append(expected, exp{line, RulePragmaMalformed})
		}
	}
	if len(expected) != 6 {
		t.Fatalf("fixture scan found %d expectations, want 6; fixture out of sync", len(expected))
	}

	var got []exp
	for _, f := range findings {
		got = append(got, exp{f.Pos.Line, f.Rule})
	}
	used := make([]bool, len(got))
	for _, e := range expected {
		found := false
		for i, g := range got {
			if !used[i] && g == e {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding line %d rule %s", e.line, e.rule)
		}
	}
	for i, g := range got {
		if !used[i] {
			t.Errorf("unexpected finding line %d rule %s: %s", g.line, g.rule, findings[i].Msg)
		}
	}
}

// TestRealTreeClean pins the repository itself at zero findings: the CI
// gate `go run ./cmd/pflint ./...` must pass, so the package's own test
// suite proves it too.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree load in -short mode")
	}
	root := moduleRoot(t)
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from ./...; loader lost the tree", len(pkgs))
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("real tree finding: %s", f)
	}
}

// TestHotpathAnnotationsPinned pins the //pflint:hotpath set on the real
// tree: the PR-2 optimized paths must stay annotated, so a refactor that
// silently drops an annotation (and with it the allocation discipline)
// fails here.
func TestHotpathAnnotationsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-package load in -short mode")
	}
	root := moduleRoot(t)
	pkgs, err := Load(root,
		"./internal/cpu", "./internal/hier", "./internal/cache",
		"./internal/prefetch", "./internal/filter", "./internal/core",
		"./internal/frontend")
	if err != nil {
		t.Fatalf("Load hot-path packages: %v", err)
	}
	annotated := make(map[string]bool)
	for _, p := range pkgs {
		for _, fn := range HotpathFunctions(p) {
			annotated[fn] = true
		}
	}
	required := []string{
		"cpu.(*CPU).slot", "cpu.(*CPU).robFull", "cpu.(*CPU).robEmpty", "cpu.(*CPU).depSatisfied",
		"hier.(*inflightHeap).push", "hier.(*inflightHeap).pop",
		"cache.(*Cache).find", "cache.(*Cache).Lookup", "cache.(*Cache).Insert",
		"prefetch.(*Queue).Contains", "prefetch.(*Queue).Enqueue", "prefetch.(*Queue).Dequeue",
		"prefetch.pcIndex",
		"prefetch.(*latencyTable).insert", "prefetch.(*latencyTable).take",
		"prefetch.(*Berti).train", "prefetch.(*Berti).bestDelta",
		"prefetch.(*GHB).valid", "prefetch.(*GHB).reconstruct",
		"prefetch.(*GHB).probeIssued", "prefetch.(*GHB).gateDegree",
		"filter.(*Perceptron).Predict", "filter.(*Perceptron).Train",
		"filter.(*Bloom).Predict", "filter.(*Bloom).Train",
		"core.(*TableFilter).Predict", "core.(*TableFilter).Allow", "core.(*TableFilter).Train",
		"frontend.(*FetchUnit).Step", "frontend.(*NextLine).Observe",
		"frontend.(*MANA).index", "frontend.(*MANA).Observe", "frontend.(*MANA).commit",
	}
	for _, fn := range required {
		if !annotated[fn] {
			t.Errorf("hot-path function %s lost its //pflint:hotpath annotation", fn)
		}
	}
}
