// The hooks analyzer: observability hooks follow the nil-check no-op
// pattern PR 1 established. Metric handles (*metrics.Counter,
// *metrics.Histogram) are nil-receiver-safe by contract, so bare calls
// are fine. Tracer event emission is different: even though
// (*trace.Tracer).Emit itself no-ops on nil, an unguarded call still
// constructs the trace.Event argument on every invocation — paying the
// full cost of tracing while tracing is off. Every Emit call in a core
// package must therefore sit inside an `if tr != nil` (or equivalent
// early-return) guard on the same receiver expression.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// tracerTypePath/Name identify the guarded hook type.
const (
	tracerPkgSuffix = "internal/trace"
	tracerTypeName  = "Tracer"
)

// guardedMethods are the Tracer methods whose arguments are expensive to
// build; these require an enclosing nil guard.
var guardedMethods = map[string]bool{"Emit": true}

func hooksAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "hooks",
		Doc:   "require the if-non-nil guard around tracer Emit hooks in core packages",
		Rules: []string{RuleHooksGuard},
		Run:   hooksRun,
	}
}

func hooksRun(p *Package) []Finding {
	if !p.IsCore() {
		return nil
	}
	w := &hookWalker{p: p}
	for _, file := range p.Syntax {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				w.block(fd.Body.List, map[string]bool{})
			}
		}
	}
	return w.findings
}

type hookWalker struct {
	p        *Package
	findings []Finding
}

// block walks a statement list with the set of receiver expressions
// currently guaranteed non-nil (keyed by their printed form).
func (w *hookWalker) block(stmts []ast.Stmt, guarded map[string]bool) {
	live := cloneGuards(guarded)
	for _, s := range stmts {
		w.stmt(s, live)
		// `if x == nil { return }` guards everything after it.
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && exitsEarly(ifs.Body) {
			for _, e := range nilEqualExprs(ifs.Cond) {
				live[e] = true
			}
		}
	}
}

func (w *hookWalker) stmt(s ast.Stmt, guarded map[string]bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s.List, guarded)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		w.exprs(guarded, s.Cond)
		inner := cloneGuards(guarded)
		for _, e := range nilCheckedExprs(s.Cond) {
			inner[e] = true
		}
		w.block(s.Body.List, inner)
		if s.Else != nil {
			w.stmt(s.Else, guarded)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		w.exprs(guarded, s.Cond)
		if s.Post != nil {
			w.stmt(s.Post, guarded)
		}
		w.block(s.Body.List, guarded)
	case *ast.RangeStmt:
		w.exprs(guarded, s.X)
		w.block(s.Body.List, guarded)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		w.exprs(guarded, s.Tag)
		w.block(s.Body.List, guarded)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, guarded)
		}
		w.stmt(s.Assign, guarded)
		w.block(s.Body.List, guarded)
	case *ast.SelectStmt:
		w.block(s.Body.List, guarded)
	case *ast.CaseClause:
		w.exprs(guarded, s.List...)
		w.block(s.Body, guarded)
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm, guarded)
		}
		w.block(s.Body, guarded)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, guarded)
	case *ast.ExprStmt:
		w.exprs(guarded, s.X)
	case *ast.SendStmt:
		w.exprs(guarded, s.Chan, s.Value)
	case *ast.IncDecStmt:
		w.exprs(guarded, s.X)
	case *ast.AssignStmt:
		w.exprs(guarded, s.Rhs...)
		w.exprs(guarded, s.Lhs...)
	case *ast.GoStmt:
		w.exprs(guarded, s.Call)
	case *ast.DeferStmt:
		w.exprs(guarded, s.Call)
	case *ast.ReturnStmt:
		w.exprs(guarded, s.Results...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(guarded, vs.Values...)
				}
			}
		}
	}
}

// exprs scans expressions for unguarded hook calls. Function literals
// start a fresh guard scope: a closure may run long after the guard that
// lexically encloses its definition was evaluated.
func (w *hookWalker) exprs(guarded map[string]bool, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				w.block(n.Body.List, map[string]bool{})
				return false
			case *ast.CallExpr:
				w.checkCall(n, guarded)
			}
			return true
		})
	}
}

func (w *hookWalker) checkCall(call *ast.CallExpr, guarded map[string]bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !guardedMethods[sel.Sel.Name] {
		return
	}
	if !isTracerPtr(w.p.TypeOf(sel.X)) {
		return
	}
	recv := types.ExprString(sel.X)
	if guarded[recv] {
		return
	}
	w.findings = append(w.findings, w.p.finding(call.Pos(), RuleHooksGuard,
		"%s.%s called without an enclosing `if %s != nil` guard; the Event argument is built even when tracing is off (PR-1 hook discipline)",
		recv, sel.Sel.Name, recv))
}

// isTracerPtr reports whether t is *trace.Tracer (matched by package
// path suffix so the lint fixtures' copy of the import works too).
func isTracerPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != tracerTypeName || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return len(path) >= len(tracerPkgSuffix) && path[len(path)-len(tracerPkgSuffix):] == tracerPkgSuffix
}

// nilCheckedExprs returns the expressions proven non-nil when cond is
// true: the `x != nil` conjuncts of an && chain.
func nilCheckedExprs(cond ast.Expr) []string {
	var out []string
	for _, c := range conjuncts(cond) {
		if e, ok := nilCompare(c, token.NEQ); ok {
			out = append(out, e)
		}
	}
	return out
}

// nilEqualExprs returns the expressions proven non-nil when cond is
// false: the `x == nil` disjuncts of an || chain.
func nilEqualExprs(cond ast.Expr) []string {
	var out []string
	for _, c := range disjuncts(cond) {
		if e, ok := nilCompare(c, token.EQL); ok {
			out = append(out, e)
		}
	}
	return out
}

func conjuncts(e ast.Expr) []ast.Expr { return splitBinary(e, token.LAND) }
func disjuncts(e ast.Expr) []ast.Expr { return splitBinary(e, token.LOR) }

func splitBinary(e ast.Expr, op token.Token) []ast.Expr {
	e = unparen(e)
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op == op {
		return append(splitBinary(be.X, op), splitBinary(be.Y, op)...)
	}
	return []ast.Expr{e}
}

// nilCompare matches `E op nil` / `nil op E` and returns E's printed form.
func nilCompare(e ast.Expr, op token.Token) (string, bool) {
	be, ok := unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return "", false
	}
	if isNilIdent(be.Y) {
		return types.ExprString(unparen(be.X)), true
	}
	if isNilIdent(be.X) {
		return types.ExprString(unparen(be.Y)), true
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// exitsEarly reports whether the block unconditionally leaves the
// enclosing statement list (return / break / continue / goto / panic).
func exitsEarly(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func cloneGuards(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
