// The hwbudget analyzer: hardware realizability for the backend zoos.
// The paper's mechanism is judged by its storage budget as much as its
// accuracy — every filter/prefetcher table in Table 1 has a size — so
// every registered backend's mutable state must be bounded at
// construction time. Three rules, applied to the state structs of the
// filter, prefetch, frontend, and core packages (a state struct is one
// that implements the package's Filter/Prefetcher backend interface,
// or is reachable from one through same-package struct fields):
//
//   - hwbudget/map: a map-typed state field. Maps grow per key; no
//     hardware table does. Use an array or slice sized by a *Log2 (or
//     validated power-of-two) config field, or carry a reasoned
//     pragma (an offline software profile is the one sanctioned case).
//   - hwbudget/unsized: a slice-bearing state field with no sized
//     make(...) allocation anywhere in the package — state that only
//     comes into being by append has no budget.
//   - hwbudget/growth: append to a state field outside a New*
//     constructor or init. Post-construction growth is the software
//     tell that the "table" has no hardware bound.
//
// Exported fields are exempt: by repo convention they are
// observability counters (Triggers, Confirmed, TrainUpdates, ...)
// read by reports, not simulated storage. The runtime complement of
// this analyzer is BudgetReport (budget.go), which instantiates every
// registered backend and prints the actual storage bits.

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hwbudgetPackages is membership by import-path base: the packages
// whose structs model hardware tables.
var hwbudgetPackages = map[string]bool{"filter": true, "prefetch": true, "frontend": true, "core": true}

// backendInterfaceNames are the interfaces whose implementers count as
// registered backends: core.Filter and the prefetcher-zoo interfaces.
var backendInterfaceNames = map[string]bool{"Filter": true, "Prefetcher": true}

func hwbudgetAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "hwbudget",
		Doc:   "backend state must be bounded at construction: no maps, no unsized slices, no post-construction growth",
		Rules: []string{RuleHWMap, RuleHWUnsized, RuleHWGrowth},
		Run:   hwbudgetRun,
	}
}

func hwbudgetRun(p *Package) []Finding {
	if !hwbudgetPackages[pkgBase(p)] || p.Types == nil {
		return nil
	}
	c := &hwbudgetChecker{p: p}
	c.collectStateStructs()
	if len(c.state) == 0 {
		return nil
	}
	c.collectAllocations()
	c.checkFields()
	c.checkGrowth()
	return c.findings
}

type hwbudgetChecker struct {
	p        *Package
	findings []Finding
	// state maps each state struct's *types.Named to its declaration
	// name, insertion-ordered for deterministic reporting.
	state map[*types.Named]bool
	order []*types.Named
	// sized is the set of field objects that receive a make(...) with a
	// length somewhere in the package.
	sized map[types.Object]bool
}

// collectStateStructs finds every named struct implementing a backend
// interface (Filter/Prefetcher, local or from a sibling zoo package),
// then closes over same-package struct-typed fields.
func (c *hwbudgetChecker) collectStateStructs() {
	c.state = map[*types.Named]bool{}

	var ifaces []*types.Interface
	addIface := func(scope *types.Scope) {
		for name := range backendInterfaceNames {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			if it, ok := tn.Type().Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, it)
			}
		}
	}
	addIface(c.p.Types.Scope())
	for _, imp := range c.p.Types.Imports() {
		if hwbudgetPackages[pathBase(imp.Path())] {
			addIface(imp.Scope())
		}
	}
	if len(ifaces) == 0 {
		return
	}

	scope := c.p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			continue
		}
		for _, it := range ifaces {
			if types.Implements(types.NewPointer(named), it) || types.Implements(named, it) {
				c.addState(named)
				break
			}
		}
	}
}

// addState records a state struct and recurses into same-package
// struct-typed fields: nested state is state.
func (c *hwbudgetChecker) addState(named *types.Named) {
	if c.state[named] {
		return
	}
	c.state[named] = true
	c.order = append(c.order, named)
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		t := st.Field(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if inner, ok := t.(*types.Named); ok && inner.Obj().Pkg() == c.p.Types {
			if _, isStruct := inner.Underlying().(*types.Struct); isStruct {
				c.addState(inner)
			}
		}
	}
}

// collectAllocations records which state fields receive a sized
// make(...) — via direct assignment (x.field = make(...), including
// through an index) or a composite-literal key.
func (c *hwbudgetChecker) collectAllocations() {
	c.sized = map[types.Object]bool{}
	for _, file := range c.p.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Lhs {
					if !isSizedMake(n.Rhs[i]) {
						continue
					}
					if obj := c.fieldObject(n.Lhs[i]); obj != nil {
						c.sized[obj] = true
					}
				}
			case *ast.KeyValueExpr:
				key, ok := n.Key.(*ast.Ident)
				if !ok || !isSizedMake(n.Value) {
					return true
				}
				if obj, ok := c.p.Info.Uses[key].(*types.Var); ok && obj.IsField() {
					c.sized[obj] = true
				}
			}
			return true
		})
	}
}

// isSizedMake reports whether e is make(...) with an explicit length.
func isSizedMake(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "make"
}

// fieldObject resolves an assignment target to the struct field it
// stores into, unwrapping index expressions (x.tables[i] = make(...)).
func (c *hwbudgetChecker) fieldObject(e ast.Expr) types.Object {
	e = unparen(e)
	for {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			break
		}
		e = unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := c.p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// checkFields applies the map and unsized rules to every unexported
// field of every state struct, reporting at the field declaration.
func (c *hwbudgetChecker) checkFields() {
	for _, named := range c.order {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Exported() {
				continue // observability counter by convention
			}
			switch {
			case containsMap(f.Type()):
				c.findings = append(c.findings, c.p.finding(f.Pos(), RuleHWMap,
					"map field %s.%s is unbounded; hardware state needs a table sized by a *Log2 config field", named.Obj().Name(), f.Name()))
			case containsSlice(f.Type()) && !c.sized[f]:
				c.findings = append(c.findings, c.p.finding(f.Pos(), RuleHWUnsized,
					"slice field %s.%s has no sized make(...) in this package; allocate its budget at construction", named.Obj().Name(), f.Name()))
			}
		}
	}
}

// checkGrowth flags appends to state fields outside constructors.
func (c *hwbudgetChecker) checkGrowth() {
	for _, file := range c.p.Syntax {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isConstructor(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if id, isIdent := unparen(call.Fun).(*ast.Ident); !isIdent || id.Name != "append" {
					return true
				}
				obj := c.fieldObject(call.Args[0])
				if obj == nil {
					return true
				}
				if v, isVar := obj.(*types.Var); isVar && c.isStateField(v) && !v.Exported() {
					c.findings = append(c.findings, c.p.finding(call.Pos(), RuleHWGrowth,
						"append grows state field %s outside a constructor; hardware tables do not grow after reset", v.Name()))
				}
				return true
			})
		}
	}
}

// isStateField reports whether v is a field of a state struct.
func (c *hwbudgetChecker) isStateField(v *types.Var) bool {
	if !v.IsField() {
		return false
	}
	for named := range c.state {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return true
			}
		}
	}
	return false
}

// isConstructor: New* functions and package init are where budgets are
// allocated; growth there is setup, not leakage.
func isConstructor(fd *ast.FuncDecl) bool {
	return strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new") || fd.Name.Name == "init"
}

// containsMap reports whether t is or contains (through arrays/slices/
// pointers) a map type. Named element types are not chased: a field of
// another struct type is checked as that struct's own field.
func containsMap(t types.Type) bool {
	switch t := t.(type) {
	case *types.Map:
		return true
	case *types.Slice:
		return containsMap(t.Elem())
	case *types.Array:
		return containsMap(t.Elem())
	case *types.Pointer:
		return containsMap(t.Elem())
	}
	return false
}

// containsSlice reports whether t is or contains a slice type.
func containsSlice(t types.Type) bool {
	switch t := t.(type) {
	case *types.Slice:
		return true
	case *types.Array:
		return containsSlice(t.Elem())
	case *types.Pointer:
		return containsSlice(t.Elem())
	}
	return false
}

// pathBase is path.Base for import paths (no trailing slashes occur).
func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
