// The errcheck analyzer: no statement-level discard of a call whose
// results include an error, in any non-test file. Explicit discards
// (`_ = f()`, `_, _ = fmt.Fprintln(w, ...)`) stay visible in review and
// are allowed; the silent `f()` form is the bug class this closes.
//
// Conventional never-fail sinks are exempt so CLI code stays idiomatic:
// fmt.Print* to stdout, fmt.Fprint* to os.Stdout/os.Stderr, and writes
// into *strings.Builder, *bytes.Buffer, or hash.Hash implementations
// (all documented to never return an error).

package lint

import (
	"go/ast"
	"go/types"
)

func errcheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "errcheck",
		Doc:   "forbid silently discarded error returns outside tests",
		Rules: []string{RuleErrcheck},
		Run:   errcheckRun,
	}
}

func errcheckRun(p *Package) []Finding {
	var out []Finding
	check := func(call *ast.CallExpr, form string) {
		if call == nil || !returnsError(p, call) || exemptCall(p, call) {
			return
		}
		out = append(out, p.finding(call.Pos(), RuleErrcheck,
			"%s discards the error returned by %s; handle it, assign it to _, or justify with //pflint:allow errcheck <reason>",
			form, callName(call)))
	}
	for _, file := range p.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "statement")
				}
			case *ast.DeferStmt:
				check(s.Call, "defer")
			case *ast.GoStmt:
				check(s.Call, "go statement")
			}
			return true
		})
	}
	return out
}

// returnsError reports whether any result of the call has type error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// exemptCall recognizes the conventional never-fail sinks.
func exemptCall(p *Package, call *ast.CallExpr) bool {
	fun := unparen(call.Fun)

	// fmt.Print*/Fprint* conventions.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if pkgPath, ok := packageQualifier(p, sel); ok && pkgPath == "fmt" {
			switch sel.Sel.Name {
			case "Print", "Printf", "Println":
				return true // stdout CLI output
			case "Fprint", "Fprintf", "Fprintln":
				return len(call.Args) > 0 && neverFailWriter(p, call.Args[0])
			}
			return false
		}
		// Methods on never-fail writers: (*strings.Builder).WriteString,
		// (*bytes.Buffer).Write, hash digests, ...
		if p.Info != nil {
			if _, isMethod := p.Info.Selections[sel]; isMethod {
				return neverFailWriter(p, sel.X)
			}
		}
	}
	return false
}

// neverFailWriter reports whether e is a writer documented to never
// return a write error: os.Stdout/os.Stderr by CLI convention,
// *strings.Builder, *bytes.Buffer, and hash.Hash implementations.
func neverFailWriter(p *Package, e ast.Expr) bool {
	e = unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if pkgPath, ok := packageQualifier(p, sel); ok && pkgPath == "os" {
			if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
				return true
			}
		}
	}
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "strings.Builder", "bytes.Buffer":
				return true
			}
		}
	}
	return isHashLike(p.TypeOf(e))
}

// isHashLike structurally matches hash.Hash (Write + Sum + BlockSize)
// without requiring the hash package in the dependency closure.
func isHashLike(t types.Type) bool {
	if t == nil {
		return false
	}
	hasMethod := func(name string) bool {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		_, ok := obj.(*types.Func)
		return ok
	}
	return hasMethod("Sum") && hasMethod("BlockSize") && hasMethod("Write")
}

// callName renders the callee for the finding message.
func callName(call *ast.CallExpr) string {
	return types.ExprString(unparen(call.Fun))
}
