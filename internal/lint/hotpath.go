// The hotpath analyzer: functions annotated //pflint:hotpath are the
// per-access simulator paths PR 2 flattened to ~8 MIPS (ROB issue-loop
// helpers, the hier inflight heap, flat-line cache access, the prefetch
// dedup ring, filter Predict/Train). Inside them, anything that can
// allocate or box is a finding:
//
//   - composite literals with map/slice type, &T{...}, make, new
//   - append whose destination's capacity is not statically backed
//     (x[:0] re-slices of a reused buffer are recognized and allowed)
//   - any call into package fmt
//   - interface conversions, explicit (assertions, I(x)) or implicit
//     (concrete value assigned/passed/returned as an interface)
//   - closures that capture enclosing state
//
// Struct value literals (e.g. trace.Event{...} passed by value) do not
// allocate and are deliberately not flagged.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func hotpathAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "forbid allocation, fmt, interface boxing, and capturing closures in //pflint:hotpath functions",
		Rules: []string{
			RuleHotAlloc, RuleHotAppend, RuleHotFmt, RuleHotIface, RuleHotClosure,
		},
		Run: hotpathRun,
	}
}

func hotpathRun(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Syntax {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hotpathDirective(fd) || fd.Body == nil {
				continue
			}
			c := &hotChecker{p: p, fn: fd}
			c.collectCapBacked()
			c.check()
			out = append(out, c.findings...)
		}
	}
	return out
}

type hotChecker struct {
	p        *Package
	fn       *ast.FuncDecl
	findings []Finding
	// capBacked marks locals assigned from a buf[:0]-style re-slice of an
	// existing backing array; appending to them does not allocate until
	// the backing capacity is exceeded, which is the reuse pattern the
	// hot paths are built on.
	capBacked map[types.Object]bool
}

func (c *hotChecker) report(pos token.Pos, rule, format string, args ...any) {
	c.findings = append(c.findings, c.p.finding(pos, rule, format, args...))
}

// collectCapBacked marks locals initialized or assigned from x[:0].
func (c *hotChecker) collectCapBacked() {
	c.capBacked = make(map[types.Object]bool)
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isZeroReslice(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := c.objOf(id); obj != nil {
					c.capBacked[obj] = true
				}
			}
		}
		return true
	})
}

func (c *hotChecker) objOf(id *ast.Ident) types.Object {
	if c.p.Info == nil {
		return nil
	}
	if o := c.p.Info.Defs[id]; o != nil {
		return o
	}
	return c.p.Info.Uses[id]
}

// isZeroReslice reports whether e is x[:0] (or x[0:0], x[:0:n]).
func isZeroReslice(e ast.Expr) bool {
	se, ok := e.(*ast.SliceExpr)
	if !ok {
		return false
	}
	return se.High != nil && isIntLit(se.High, "0") && (se.Low == nil || isIntLit(se.Low, "0"))
}

func isIntLit(e ast.Expr, text string) bool {
	bl, ok := e.(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == text
}

func (c *hotChecker) check() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			c.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.report(n.Pos(), RuleHotAlloc, "&composite literal escapes to the heap in hot path %s", funcName(c.fn))
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.TypeAssertExpr:
			if n.Type != nil { // nil Type is a type switch, handled as branching, not boxing
				c.report(n.Pos(), RuleHotIface, "type assertion in hot path %s; use concrete types", funcName(c.fn))
			}
		case *ast.AssignStmt:
			c.checkAssignBoxing(n)
		case *ast.ValueSpec:
			c.checkValueSpecBoxing(n)
		case *ast.ReturnStmt:
			c.checkReturnBoxing(n)
		case *ast.FuncLit:
			if capt := c.captures(n); capt != "" {
				c.report(n.Pos(), RuleHotClosure, "closure captures %s in hot path %s; hoist the closure to construction time", capt, funcName(c.fn))
			}
		}
		return true
	})
}

func (c *hotChecker) checkCompositeLit(cl *ast.CompositeLit) {
	t := c.p.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(cl.Pos(), RuleHotAlloc, "slice literal allocates in hot path %s; use a preallocated buffer", funcName(c.fn))
	case *types.Map:
		c.report(cl.Pos(), RuleHotAlloc, "map literal allocates in hot path %s; use a preallocated table", funcName(c.fn))
	}
}

func (c *hotChecker) checkCall(call *ast.CallExpr) {
	// Builtins: make/new allocate; append is allowed only onto
	// capacity-backed destinations.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				c.report(call.Pos(), RuleHotAlloc, "%s allocates in hot path %s; allocate at construction time", b.Name(), funcName(c.fn))
			case "append":
				if len(call.Args) > 0 && !c.isCapBackedDest(call.Args[0]) {
					c.report(call.Pos(), RuleHotAppend, "append to capacity-unknown slice may allocate in hot path %s; append into a buf[:0] re-slice of a reused buffer, or justify with //pflint:allow hotpath/append <reason>", funcName(c.fn))
				}
			}
			return
		}
	}

	// Conversions to interface types box their operand.
	if tv, ok := c.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isInterface(tv.Type) && c.isConcrete(call.Args[0]) {
			c.report(call.Pos(), RuleHotIface, "conversion to interface type %s boxes its operand in hot path %s", tv.Type.String(), funcName(c.fn))
		}
		return
	}

	// Calls into package fmt.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkgPath, ok := packageQualifier(c.p, sel); ok && pkgPath == "fmt" {
			c.report(call.Pos(), RuleHotFmt, "fmt.%s call in hot path %s; fmt allocates and boxes every operand", sel.Sel.Name, funcName(c.fn))
			return
		}
	}

	// Implicit boxing: concrete arguments bound to interface parameters.
	sig, ok := c.p.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing an existing slice through; no boxing here
			}
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && c.isConcrete(arg) {
			c.report(arg.Pos(), RuleHotIface, "concrete value passed as interface %s boxes in hot path %s", pt.String(), funcName(c.fn))
		}
	}
}

func (c *hotChecker) checkAssignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		if as.Tok == token.DEFINE {
			continue // := infers the concrete type; no interface involved
		}
		lt := c.p.TypeOf(as.Lhs[i])
		if lt != nil && isInterface(lt) && c.isConcrete(as.Rhs[i]) {
			c.report(as.Rhs[i].Pos(), RuleHotIface, "concrete value assigned to interface %s boxes in hot path %s", lt.String(), funcName(c.fn))
		}
	}
}

func (c *hotChecker) checkValueSpecBoxing(vs *ast.ValueSpec) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	dt := c.p.TypeOf(vs.Type)
	if dt == nil || !isInterface(dt) {
		return
	}
	for _, v := range vs.Values {
		if c.isConcrete(v) {
			c.report(v.Pos(), RuleHotIface, "concrete value assigned to interface %s boxes in hot path %s", dt.String(), funcName(c.fn))
		}
	}
}

func (c *hotChecker) checkReturnBoxing(rs *ast.ReturnStmt) {
	results := c.fn.Type.Results
	if results == nil || len(rs.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, f := range results.List {
		t := c.p.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(rs.Results) != len(resultTypes) {
		return // returning a multi-value call; conversions happen at the callee
	}
	for i, r := range rs.Results {
		if resultTypes[i] != nil && isInterface(resultTypes[i]) && c.isConcrete(r) {
			c.report(r.Pos(), RuleHotIface, "concrete value returned as interface %s boxes in hot path %s", resultTypes[i].String(), funcName(c.fn))
		}
	}
}

// isCapBackedDest reports whether the append destination is a
// capacity-backed re-slice: either literally x[:0] or a local previously
// assigned from one.
func (c *hotChecker) isCapBackedDest(e ast.Expr) bool {
	e = unparen(e)
	if isZeroReslice(e) {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.objOf(id); obj != nil {
			return c.capBacked[obj]
		}
	}
	return false
}

// captures returns the name of a variable the closure captures from the
// enclosing function, or "" if it captures nothing.
func (c *hotChecker) captures(fl *ast.FuncLit) string {
	if c.p.Info == nil {
		return ""
	}
	name := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but outside
		// this closure. Package-level vars fail the first test.
		if v.Pos() >= c.fn.Pos() && v.Pos() < c.fn.End() &&
			(v.Pos() < fl.Pos() || v.Pos() >= fl.End()) {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isConcrete reports whether the expression has a concrete (non-interface,
// non-nil) type, i.e. binding it to an interface requires boxing.
func (c *hotChecker) isConcrete(e ast.Expr) bool {
	tv, ok := c.p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	if isBasic && b.Kind() == types.UntypedNil {
		return false
	}
	return !isInterface(tv.Type)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
