// Package cpu implements the out-of-order core timing model that drives
// the memory hierarchy.
//
// The model reproduces the structural parameters of Table 1 — 8-wide
// issue/retire, 128-entry reorder buffer, 64-entry load/store queue,
// bimodal branch predictor with a 4-way 4096-set BTB — at trace level:
// instructions arrive pre-decoded from an isa.Source, so the model tracks
// occupancy and latency rather than register semantics. What it captures,
// and what the paper's results hinge on, is:
//
//   - limited L1 ports shared between demand accesses and the prefetch
//     queue (prefetches get leftover ports only);
//   - in-order retirement bounded by the ROB, so long-latency misses at
//     the ROB head stall the pipeline;
//   - serialized pointer-chasing loads via the trace's Dep flag, which
//     removes memory-level parallelism exactly where real pointer codes
//     lose it;
//   - branch mispredictions as fetch stalls.
package cpu

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/hier"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/predictor"
)

const notReady = ^uint64(0)

// robEntry is one in-flight instruction.
type robEntry struct {
	op      isa.Op
	pc      uint64
	addr    uint64
	dep     bool // serialized behind the previous entry
	isStore bool
	issued  bool   // memory op has been sent to the hierarchy
	readyAt uint64 // completion cycle; notReady until known
}

// Result aggregates what one run produced at the core level.
type Result struct {
	Instructions uint64
	Cycles       uint64

	Loads    uint64
	Stores   uint64
	Branches uint64
	SoftPF   uint64
	ALUOps   uint64

	BranchPredictions    uint64
	BranchMispredictions uint64

	// PortConflictCycles counts cycles in which at least one ready demand
	// memory op could not issue because all L1 ports were taken.
	PortConflictCycles uint64
	// PrefetchPortWaits counts cycles the prefetch queue held work but
	// demand accesses had consumed every L1 port — the §5.4
	// procrastination pressure.
	PrefetchPortWaits uint64
	// ROBStallCycles counts cycles dispatch was blocked by a full ROB.
	ROBStallCycles uint64
	// LSQStallCycles counts cycles dispatch was blocked by a full LSQ.
	LSQStallCycles uint64
	// MSHRStallCycles counts cycles at least one ready load could not
	// issue because all miss-status registers were in use (only with
	// cfg.MSHRs > 0).
	MSHRStallCycles uint64
	// FetchStallCycles counts cycles the front end stalled on an L1I
	// fetch miss (only when the I-side front end is modelled).
	FetchStallCycles uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// CPU is the core model. Create one per run.
type CPU struct {
	cfg    config.CPUConfig
	h      *hier.Hierarchy
	branch *predictor.Unit

	rob     []robEntry
	robMask uint64 // len(rob)-1 when the ROB size is a power of two, else 0
	robLen  uint64
	robHead uint64 // sequence number of the oldest in-flight instruction
	robTail uint64 // sequence number the next dispatched instruction gets

	// issueFrom is the lowest sequence number that may still hold an
	// unissued memory op; entries below it are issued, non-memory, or
	// retired, and none of those states ever reverts. pendingMem counts
	// dispatched-but-unissued memory ops. Together they let the per-cycle
	// issue stage touch only the ROB window that can actually issue,
	// instead of scanning head..tail every cycle.
	issueFrom  uint64
	pendingMem int

	lsqCount int

	// outstanding holds the completion cycles of in-flight demand load
	// misses, for the optional MSHR bound (cfg.MSHRs > 0). Loads only:
	// stores drain through the store buffer.
	outstanding []uint64

	fetchStallUntil uint64

	// met, when non-nil, receives the core-level results as "sim.cpu.*"
	// gauges when Run returns. Attachment is end-of-run only — nothing
	// touches the registry inside the cycle loop — so instrumentation
	// cannot perturb timing or throughput.
	met *metrics.Registry

	res Result
}

// New builds a core over the given hierarchy.
func New(cfg config.CPUConfig, h *hier.Hierarchy) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if h == nil {
		return nil, fmt.Errorf("cpu: hierarchy must not be nil")
	}
	bu, err := predictor.NewUnit(cfg.BimodalEntries, cfg.BTBSets, cfg.BTBAssoc)
	if err != nil {
		return nil, err
	}
	c := &CPU{cfg: cfg, h: h, branch: bu, rob: make([]robEntry, cfg.ROBEntries), robLen: uint64(cfg.ROBEntries)}
	if n := uint64(cfg.ROBEntries); n&(n-1) == 0 {
		// Power-of-two ROB (the Table 1 machine): slot() becomes a mask
		// instead of an integer division, which profiles as ~30% of the
		// whole cycle loop otherwise.
		c.robMask = n - 1
	}
	return c, nil
}

// Branch exposes the branch unit (stats, tests).
func (c *CPU) Branch() *predictor.Unit { return c.branch }

// AttachMetrics registers the registry that receives the core's results
// when Run completes. A nil registry detaches.
func (c *CPU) AttachMetrics(reg *metrics.Registry) { c.met = reg }

// dumpMetrics exports the final Result as "sim.cpu.*" gauges.
func (c *CPU) dumpMetrics() {
	reg := c.met
	if reg == nil {
		return
	}
	set := func(name string, v uint64) { reg.Counter("sim.cpu." + name).Set(v) }
	set("instructions", c.res.Instructions)
	set("cycles", c.res.Cycles)
	set("loads", c.res.Loads)
	set("stores", c.res.Stores)
	set("branches", c.res.Branches)
	set("software_prefetches", c.res.SoftPF)
	set("alu_ops", c.res.ALUOps)
	set("branch_predictions", c.res.BranchPredictions)
	set("branch_mispredictions", c.res.BranchMispredictions)
	set("port_conflict_cycles", c.res.PortConflictCycles)
	set("prefetch_port_waits", c.res.PrefetchPortWaits)
	set("rob_stall_cycles", c.res.ROBStallCycles)
	set("lsq_stall_cycles", c.res.LSQStallCycles)
	set("mshr_stall_cycles", c.res.MSHRStallCycles)
	set("fetch_stall_cycles", c.res.FetchStallCycles)
}

// slot maps a sequence number to its ROB frame.
//
//pflint:hotpath
func (c *CPU) slot(seq uint64) *robEntry {
	if c.robMask != 0 {
		return &c.rob[seq&c.robMask]
	}
	return &c.rob[seq%c.robLen]
}

// robFull reports whether fetch must stall for ROB space.
//
//pflint:hotpath
func (c *CPU) robFull() bool { return c.robTail-c.robHead >= uint64(len(c.rob)) }

// robEmpty reports whether the pipeline has drained.
//
//pflint:hotpath
func (c *CPU) robEmpty() bool { return c.robTail == c.robHead }

// depSatisfied reports whether the entry at seq may issue, honouring the
// Dep serialization flag. An entry with Dep waits for its immediate
// predecessor to complete; a retired predecessor is complete by
// definition.
//
//pflint:hotpath
func (c *CPU) depSatisfied(seq, now uint64) bool {
	e := c.slot(seq)
	if !e.dep || seq == 0 {
		return true
	}
	prev := seq - 1
	if prev < c.robHead {
		return true // already retired
	}
	p := c.slot(prev)
	return p.readyAt != notReady && p.readyAt <= now
}

// Run executes the trace until the source is exhausted (or warmup+maxInstr
// records, when maxInstr is positive) and the pipeline drains, returning
// core-level results. When warmup is positive, all statistics — the
// core's, the hierarchy's, and the filter's — are reset after `warmup`
// instructions retire, while cache, predictor, and history-table state
// stay warm; this measures steady-state behaviour the way the paper's
// long native runs do, without charging cold-start misses to the
// experiment. The hierarchy accumulates its own statistics during the
// run; the caller is responsible for calling h.Finish afterwards.
func (c *CPU) Run(src isa.Source, maxInstr, warmup int64) Result {
	var (
		cycle     uint64
		cycleBase uint64
		exhausted bool
		fetched   int64
		pending   isa.Record
		hasPend   bool
		warm      = warmup <= 0 // true once measurement has started
	)
	if maxInstr > 0 && warmup > 0 {
		maxInstr += warmup
	}

	nextRecord := func() (isa.Record, bool) {
		if hasPend {
			hasPend = false
			return pending, true
		}
		if exhausted || (maxInstr > 0 && fetched >= maxInstr) {
			return isa.Record{}, false
		}
		r, ok := src.Next()
		if !ok {
			exhausted = true
			return isa.Record{}, false
		}
		fetched++
		return r, true
	}
	pushBack := func(r isa.Record) { pending, hasPend = r, true }

	done := func() bool {
		if hasPend {
			return false
		}
		if !(exhausted || (maxInstr > 0 && fetched >= maxInstr)) {
			return false
		}
		return c.robEmpty()
	}

	// Run-constant machine parameters, hoisted out of the cycle loop
	// (Config() returns the whole config by value — copying it per cycle
	// shows up in profiles).
	ports := c.h.Config().L1.Ports
	l1lat := uint64(c.h.Config().L1.LatencyCycles)
	mshrs := c.cfg.MSHRs
	feEnabled := c.h.FrontendEnabled()

	for !done() {
		cycle++
		c.h.Tick(cycle)

		if !warm && c.res.Instructions >= uint64(warmup) {
			warm = true
			cycleBase = cycle
			// Retirement overshoots the warmup boundary by up to the retire
			// width; those instructions belong to the measured window.
			over := c.res.Instructions - uint64(warmup)
			c.res = Result{Instructions: over}
			c.branch.Predictions, c.branch.Mispredictions = 0, 0
			c.h.ResetStats()
		}

		// --- Retire (in order) ---
		retired := 0
		for retired < c.cfg.RetireWidth && !c.robEmpty() {
			e := c.slot(c.robHead)
			if e.readyAt == notReady || e.readyAt > cycle {
				break
			}
			if e.op.IsMem() {
				c.lsqCount--
			}
			c.robHead++
			retired++
			c.res.Instructions++
		}

		// --- Dispatch (up to issue width) ---
		if cycle >= c.fetchStallUntil {
			for i := 0; i < c.cfg.IssueWidth; i++ {
				if c.robFull() {
					c.res.ROBStallCycles++
					break
				}
				r, ok := nextRecord()
				if !ok {
					break
				}
				if feEnabled {
					// The instruction must be fetched before it can
					// dispatch. An L1I miss stalls the front end until
					// the block arrives; the record retries then (the
					// fetch unit is already on its block, so the retry
					// completes immediately).
					if fetchDone := c.h.FetchAccess(cycle, r.PC); fetchDone > cycle {
						pushBack(r)
						if fetchDone > c.fetchStallUntil {
							c.fetchStallUntil = fetchDone
						}
						c.res.FetchStallCycles += fetchDone - cycle
						break
					}
				}
				if r.Op.IsMem() && c.lsqCount >= c.cfg.LSQEntries {
					pushBack(r)
					c.res.LSQStallCycles++
					break
				}
				seq := c.robTail
				c.robTail++
				e := c.slot(seq)
				*e = robEntry{op: r.Op, pc: r.PC, addr: r.Addr, dep: r.Dep, readyAt: notReady}
				switch r.Op {
				case isa.OpALU:
					e.readyAt = cycle + 1
					c.res.ALUOps++
				case isa.OpBranch:
					e.readyAt = cycle + 1
					c.res.Branches++
					correct := c.branch.Resolve(r.PC, r.Taken, r.Addr)
					if !correct {
						// Fetch redirects after the penalty; dispatch of
						// younger instructions stops this cycle.
						c.fetchStallUntil = cycle + uint64(c.cfg.BranchPenalty)
						c.res.BranchPredictions = c.branch.Predictions
						c.res.BranchMispredictions = c.branch.Mispredictions
						i = c.cfg.IssueWidth // stop dispatching
					}
				case isa.OpLoad:
					c.lsqCount++
					c.pendingMem++
					c.res.Loads++
				case isa.OpStore:
					c.lsqCount++
					c.pendingMem++
					e.isStore = true
					c.res.Stores++
				case isa.OpPrefetch:
					c.lsqCount++
					c.res.SoftPF++
					// Software prefetches are non-blocking: they complete
					// immediately and hand their address to the filter path.
					c.h.SoftwarePrefetch(cycle, r.PC, r.Addr)
					e.readyAt = cycle + 1
				}
			}
		}

		// --- Issue memory ops to the L1, oldest first, bounded by ports ---
		if mshrs > 0 && len(c.outstanding) > 0 {
			// Retire completed misses from the MSHR file.
			live := c.outstanding[:0]
			for _, done := range c.outstanding {
				if done > cycle {
					live = append(live, done)
				}
			}
			c.outstanding = live
		}
		used := 0
		blocked := false
		mshrBlocked := false
		if c.pendingMem > 0 {
			// Skip the prefix of the window that can never issue again:
			// issued memory ops and non-memory entries stay that way until
			// retirement, so issueFrom only ever moves forward.
			if c.issueFrom < c.robHead {
				c.issueFrom = c.robHead
			}
			for c.issueFrom < c.robTail {
				e := c.slot(c.issueFrom)
				if !e.issued && (e.op == isa.OpLoad || e.op == isa.OpStore) {
					break
				}
				c.issueFrom++
			}
			remaining := c.pendingMem
			for seq := c.issueFrom; seq < c.robTail && remaining > 0; seq++ {
				e := c.slot(seq)
				if e.issued || (e.op != isa.OpLoad && e.op != isa.OpStore) {
					continue
				}
				remaining--
				if !c.depSatisfied(seq, cycle) {
					continue
				}
				if used >= ports {
					blocked = true
					break
				}
				if mshrs > 0 && e.op == isa.OpLoad && len(c.outstanding) >= mshrs {
					// No free miss-status register: a potential miss cannot
					// issue; hits cannot be distinguished before tag access,
					// so the load waits.
					mshrBlocked = true
					continue
				}
				used++
				e.issued = true
				c.pendingMem--
				doneAt := c.h.DemandAccess(cycle, e.pc, e.addr, e.isStore)
				if e.isStore {
					// Stores drain through a store buffer: they do not hold up
					// retirement once issued.
					e.readyAt = cycle + 1
				} else {
					e.readyAt = doneAt
					if mshrs > 0 && doneAt > cycle+l1lat {
						c.outstanding = append(c.outstanding, doneAt)
					}
				}
			}
		}
		if blocked {
			c.res.PortConflictCycles++
		}
		if mshrBlocked {
			c.res.MSHRStallCycles++
		}

		// --- Leftover ports go to the prefetch queue ---
		if used < ports {
			c.h.IssuePrefetches(cycle, ports-used)
		} else if c.h.QueuedPrefetches() > 0 {
			c.res.PrefetchPortWaits++
		}

		// --- The I-side queue issues strictly last: after the cycle's
		// demand accesses and D-side prefetches, so instruction
		// prefetches can never claim the shared L2 port ahead of the
		// data path (see hier.IssueIPrefetches) ---
		if feEnabled {
			c.h.IssueIPrefetches(cycle, 1)
		}
	}

	c.res.Cycles = cycle - cycleBase
	c.res.BranchPredictions = c.branch.Predictions
	c.res.BranchMispredictions = c.branch.Mispredictions
	c.dumpMetrics()
	return c.res
}
