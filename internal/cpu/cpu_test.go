package cpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/isa"
	"repro/internal/xrand"
)

// quietConfig disables prefetching so core-timing tests see pure demand
// behaviour.
func quietConfig() config.Config {
	cfg := config.Default()
	cfg.Prefetch.EnableNSP = false
	cfg.Prefetch.EnableSDP = false
	cfg.Prefetch.EnableSoftware = false
	return cfg
}

func newCPU(t *testing.T, cfg config.Config) (*CPU, *hier.Hierarchy) {
	t.Helper()
	h, err := hier.New(cfg, core.NewNull(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg.CPU, h)
	if err != nil {
		t.Fatal(err)
	}
	return c, h
}

func TestNewValidation(t *testing.T) {
	cfg := quietConfig()
	h, _ := hier.New(cfg, core.NewNull(), xrand.New(1))
	bad := cfg.CPU
	bad.IssueWidth = 0
	if _, err := New(bad, h); err == nil {
		t.Fatal("invalid CPU config should fail")
	}
	if _, err := New(cfg.CPU, nil); err == nil {
		t.Fatal("nil hierarchy should fail")
	}
}

func TestALUOnlyIPCApproachesWidth(t *testing.T) {
	c, _ := newCPU(t, quietConfig())
	recs := make([]isa.Record, 10000)
	for i := range recs {
		recs[i] = isa.ALU(uint64(0x400000 + i*4))
	}
	res := c.Run(isa.NewSliceSource(recs), 0, 0)
	if res.Instructions != 10000 {
		t.Fatalf("retired %d", res.Instructions)
	}
	if ipc := res.IPC(); ipc < 6 {
		t.Fatalf("pure ALU IPC = %v, want near issue width 8", ipc)
	}
}

func TestMaxInstrBounds(t *testing.T) {
	c, _ := newCPU(t, quietConfig())
	recs := make([]isa.Record, 1000)
	for i := range recs {
		recs[i] = isa.ALU(uint64(0x400000 + i*4))
	}
	res := c.Run(isa.NewSliceSource(recs), 100, 0)
	if res.Instructions != 100 {
		t.Fatalf("retired %d, want 100", res.Instructions)
	}
}

func TestMissLatencyStallsPipeline(t *testing.T) {
	cfg := quietConfig()
	cHit, _ := newCPU(t, cfg)
	cMiss, _ := newCPU(t, cfg)

	// Same instruction count; one trace hammers a single line (hits),
	// the other strides through memory (misses).
	var hits, misses []isa.Record
	for i := 0; i < 2000; i++ {
		pc := uint64(0x400000 + i*4)
		hits = append(hits, isa.Load(pc, 0x1000))
		misses = append(misses, isa.Load(pc, uint64(0x1000+i*8192)))
	}
	rHit := cHit.Run(isa.NewSliceSource(hits), 0, 0)
	rMiss := cMiss.Run(isa.NewSliceSource(misses), 0, 0)
	if rMiss.IPC() >= rHit.IPC() {
		t.Fatalf("missy trace IPC %v should be below hitty trace IPC %v", rMiss.IPC(), rHit.IPC())
	}
	if rMiss.ROBStallCycles == 0 && rMiss.LSQStallCycles == 0 {
		t.Fatal("long misses should back-pressure dispatch via the ROB or LSQ")
	}
}

func TestDepSerializationSlowsChains(t *testing.T) {
	cfg := quietConfig()
	cInd, _ := newCPU(t, cfg)
	cDep, _ := newCPU(t, cfg)

	var ind, dep []isa.Record
	for i := 0; i < 500; i++ {
		pc := uint64(0x400000 + i*4)
		addr := uint64(0x1000 + i*8192) // all misses
		ind = append(ind, isa.Load(pc, addr))
		dep = append(dep, isa.DepLoad(pc, addr))
	}
	rInd := cInd.Run(isa.NewSliceSource(ind), 0, 0)
	rDep := cDep.Run(isa.NewSliceSource(dep), 0, 0)
	// Dependent chains lose all memory-level parallelism.
	if rDep.Cycles < rInd.Cycles*2 {
		t.Fatalf("dep chain %d cycles vs independent %d: expected >2x serialization",
			rDep.Cycles, rInd.Cycles)
	}
}

func TestBranchMispredictPenalty(t *testing.T) {
	cfg := quietConfig()
	cGood, _ := newCPU(t, cfg)
	cBad, _ := newCPU(t, cfg)

	var predictable, random []isa.Record
	rng := xrand.New(5)
	for i := 0; i < 4000; i++ {
		pc := uint64(0x400000 + (i%8)*4)
		predictable = append(predictable, isa.Branch(pc, pc+32, true))
		random = append(random, isa.Branch(pc, pc+32, rng.Bool(0.5)))
	}
	rGood := cGood.Run(isa.NewSliceSource(predictable), 0, 0)
	rBad := cBad.Run(isa.NewSliceSource(random), 0, 0)
	if rGood.BranchMispredictions >= rBad.BranchMispredictions {
		t.Fatalf("mispredictions: steady %d vs random %d", rGood.BranchMispredictions, rBad.BranchMispredictions)
	}
	if rBad.IPC() >= rGood.IPC() {
		t.Fatalf("random branches IPC %v should trail predictable %v", rBad.IPC(), rGood.IPC())
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	cfg := quietConfig()
	cLoad, _ := newCPU(t, cfg)
	cStore, _ := newCPU(t, cfg)
	var loads, stores []isa.Record
	for i := 0; i < 500; i++ {
		pc := uint64(0x400000 + i*4)
		addr := uint64(0x1000 + i*8192)
		loads = append(loads, isa.Load(pc, addr))
		stores = append(stores, isa.Store(pc, addr))
	}
	rLoad := cLoad.Run(isa.NewSliceSource(loads), 0, 0)
	rStore := cStore.Run(isa.NewSliceSource(stores), 0, 0)
	// Stores drain through the store buffer: far fewer cycles than loads.
	if rStore.Cycles*2 > rLoad.Cycles {
		t.Fatalf("store trace %d cycles vs load trace %d: stores should not block",
			rStore.Cycles, rLoad.Cycles)
	}
}

func TestSoftwarePrefetchRouted(t *testing.T) {
	cfg := quietConfig()
	cfg.Prefetch.EnableSoftware = true
	c, h := newCPU(t, cfg)
	recs := []isa.Record{
		isa.Prefetch(0x400000, 0x2000),
		isa.ALU(0x400004),
	}
	res := c.Run(isa.NewSliceSource(recs), 0, 0)
	if res.SoftPF != 1 {
		t.Fatalf("soft prefetches = %d", res.SoftPF)
	}
	if h.Pf.Issued != 1 {
		t.Fatalf("prefetch not issued: %+v", h.Pf)
	}
}

func TestPortConflictCounted(t *testing.T) {
	cfg := quietConfig()
	cfg.L1.Ports = 1 // starve the memory pipeline
	c, _ := newCPU(t, cfg)
	var recs []isa.Record
	for i := 0; i < 2000; i++ {
		recs = append(recs, isa.Load(uint64(0x400000+i*4), 0x1000)) // all hits
	}
	res := c.Run(isa.NewSliceSource(recs), 0, 0)
	if res.PortConflictCycles == 0 {
		t.Fatal("1-port cache under 8-wide issue should conflict")
	}
}

func TestMorePortsHelpMemoryBoundCode(t *testing.T) {
	mk := func(ports int) Result {
		cfg := quietConfig()
		cfg.L1.Ports = ports
		c, _ := newCPU(t, cfg)
		var recs []isa.Record
		for i := 0; i < 5000; i++ {
			recs = append(recs, isa.Load(uint64(0x400000+i%64*4), uint64(0x1000+(i%128)*32)))
		}
		return c.Run(isa.NewSliceSource(recs), 0, 0)
	}
	if r1, r3 := mk(1), mk(3); r3.IPC() <= r1.IPC() {
		t.Fatalf("3 ports IPC %v should beat 1 port %v", r3.IPC(), r1.IPC())
	}
}

func TestWarmupResetsStatistics(t *testing.T) {
	cfg := quietConfig()
	c, h := newCPU(t, cfg)
	var recs []isa.Record
	for i := 0; i < 4000; i++ {
		recs = append(recs, isa.Load(uint64(0x400000+i%16*4), uint64((i%512)*32)))
	}
	res := c.Run(isa.NewSliceSource(recs), 2000, 2000)
	if res.Instructions != 2000 {
		t.Fatalf("measured instructions = %d, want 2000 after warmup", res.Instructions)
	}
	// The second half re-touches the same 512 lines, which fit the L2 but
	// not the 256-line L1 — stats must reflect only the measured half.
	if h.L1.Stats.DemandAccesses > 2100 {
		t.Fatalf("warmup accesses leaked into stats: %d", h.L1.Stats.DemandAccesses)
	}
	if res.Cycles == 0 {
		t.Fatal("cycles should count the measured phase")
	}
}

func TestLSQBackpressure(t *testing.T) {
	cfg := quietConfig()
	cfg.CPU.LSQEntries = 2
	c, _ := newCPU(t, cfg)
	var recs []isa.Record
	for i := 0; i < 200; i++ {
		recs = append(recs, isa.Load(uint64(0x400000+i*4), uint64(0x1000+i*8192)))
	}
	res := c.Run(isa.NewSliceSource(recs), 0, 0)
	if res.LSQStallCycles == 0 {
		t.Fatal("a 2-entry LSQ under a miss storm must stall dispatch")
	}
	if res.Instructions != 200 {
		t.Fatalf("all instructions must still retire: %d", res.Instructions)
	}
}

func TestPipelineDrainsOnExhaustion(t *testing.T) {
	c, _ := newCPU(t, quietConfig())
	recs := []isa.Record{isa.Load(0x400000, 0x10_000_000)} // single long miss
	res := c.Run(isa.NewSliceSource(recs), 0, 0)
	if res.Instructions != 1 {
		t.Fatalf("the pipeline must drain: retired %d", res.Instructions)
	}
	if res.Cycles < 150 {
		t.Fatalf("a memory miss should take >150 cycles, got %d", res.Cycles)
	}
}

func TestMSHRBoundThrottlesMLP(t *testing.T) {
	mk := func(mshrs int) Result {
		cfg := quietConfig()
		cfg.CPU.MSHRs = mshrs
		c, _ := newCPU(t, cfg)
		var recs []isa.Record
		for i := 0; i < 800; i++ {
			recs = append(recs, isa.Load(uint64(0x400000+i%32*4), uint64(0x1000+i*8192)))
		}
		return c.Run(isa.NewSliceSource(recs), 0, 0)
	}
	unbounded := mk(0)
	bounded := mk(1)
	if bounded.Cycles <= unbounded.Cycles {
		t.Fatalf("1 MSHR (%d cycles) must serialize misses vs unlimited (%d)",
			bounded.Cycles, unbounded.Cycles)
	}
	if bounded.MSHRStallCycles == 0 {
		t.Fatal("MSHR stalls should be counted")
	}
	if bounded.Instructions != unbounded.Instructions {
		t.Fatal("all instructions must still retire")
	}
}

func TestMSHRUnlimitedByDefault(t *testing.T) {
	cfg := quietConfig()
	if cfg.CPU.MSHRs != 0 {
		t.Fatal("the Table 1 machine leaves MSHRs unbounded")
	}
}
