package analysis

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 3, -32} {
		if _, err := NewAnalyzer(n); err == nil {
			t.Errorf("NewAnalyzer(%d) should fail", n)
		}
	}
}

func TestColdMissesAndFootprint(t *testing.T) {
	a, _ := NewAnalyzer(32)
	for i := uint64(0); i < 10; i++ {
		a.Touch(i * 32)
	}
	p := a.Profile()
	if p.ColdMisses != 10 || p.Footprint != 10 || p.Accesses != 10 {
		t.Fatalf("profile = %+v", p)
	}
}

func TestSameLineDistanceOne(t *testing.T) {
	a, _ := NewAnalyzer(32)
	a.Touch(0)
	a.Touch(0)
	a.Touch(4) // same 32B line
	p := a.Profile()
	// Two reuses at distance 1 → bucket 0.
	if p.Histogram[0] != 2 {
		t.Fatalf("histogram = %v", p.Histogram[:4])
	}
}

func TestKnownStackDistances(t *testing.T) {
	a, _ := NewAnalyzer(32)
	// Touch A, B, C, then A again: A's reuse distance = 3 (A,B,C distinct).
	a.Touch(0 * 32)
	a.Touch(1 * 32)
	a.Touch(2 * 32)
	a.Touch(0 * 32)
	p := a.Profile()
	// Distance 3 lands in bucket 1 ([2,4)).
	if p.Histogram[1] != 1 {
		t.Fatalf("histogram = %v", p.Histogram[:4])
	}
}

func TestCyclicSweepDistance(t *testing.T) {
	a, _ := NewAnalyzer(32)
	const lines = 64
	for rep := 0; rep < 3; rep++ {
		for i := uint64(0); i < lines; i++ {
			a.Touch(i * 32)
		}
	}
	p := a.Profile()
	// Every reuse in a cyclic sweep has distance = lines = 64 → bucket 6.
	if p.Histogram[6] != 2*lines {
		t.Fatalf("bucket 6 = %d, want %d (hist %v)", p.Histogram[6], 2*lines, p.Histogram[:8])
	}
}

func TestMissRateCurve(t *testing.T) {
	a, _ := NewAnalyzer(32)
	const lines = 64
	const reps = 10
	for rep := 0; rep < reps; rep++ {
		for i := uint64(0); i < lines; i++ {
			a.Touch(i * 32)
		}
	}
	p := a.Profile()
	// A cache >= 64 lines holds the whole loop: only cold misses.
	cold := float64(lines) / float64(lines*reps)
	if got := p.MissRate(128); got > cold+1e-9 {
		t.Fatalf("big-cache miss rate %v, want ~%v", got, cold)
	}
	// A cache of 16 lines thrashes completely under LRU cyclic access.
	if got := p.MissRate(16); got < 0.99 {
		t.Fatalf("small-cache miss rate %v, want ~1", got)
	}
}

func TestWorkingSet(t *testing.T) {
	a, _ := NewAnalyzer(32)
	const lines = 100
	for rep := 0; rep < 20; rep++ {
		for i := uint64(0); i < lines; i++ {
			a.Touch(i * 32)
		}
	}
	ws := a.Profile().WorkingSet(0.1)
	if ws < lines || ws > 4*lines {
		t.Fatalf("working set = %d lines, want ~%d", ws, lines)
	}
}

func TestBucketRange(t *testing.T) {
	if lo, hi := BucketRange(0); lo != 1 || hi != 2 {
		t.Fatalf("bucket 0 = [%d,%d)", lo, hi)
	}
	if lo, hi := BucketRange(5); lo != 32 || hi != 64 {
		t.Fatalf("bucket 5 = [%d,%d)", lo, hi)
	}
}

func TestHotBuckets(t *testing.T) {
	a, _ := NewAnalyzer(32)
	for i := 0; i < 100; i++ {
		a.Touch(0) // all reuses at distance 1
	}
	hot := a.Profile().HotBuckets(0.5)
	if len(hot) != 1 || hot[0] != 0 {
		t.Fatalf("hot buckets = %v", hot)
	}
	if (Profile{}).HotBuckets(0.5) != nil {
		t.Fatal("empty profile should have no hot buckets")
	}
}

func TestAnalyzeSourceSkipsNonMemory(t *testing.T) {
	recs := []isa.Record{
		isa.ALU(0x400000),
		isa.Load(0x400004, 0x1000),
		isa.Branch(0x400008, 0x400000, true),
		isa.Store(0x40000c, 0x1000),
		isa.Prefetch(0x400010, 0x9000), // prefetches are hints, not demand
	}
	p, err := AnalyzeSource(isa.NewSliceSource(recs), 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Accesses != 2 {
		t.Fatalf("accesses = %d, want 2 (load+store)", p.Accesses)
	}
	if p.Histogram[0] != 1 {
		t.Fatal("store should reuse the load's line at distance 1")
	}
}

// Property: counting invariants — accesses = cold + reuses, and the
// predicted miss rate is monotonically non-increasing in cache size.
func TestPropertyInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		rng := xrand.New(seed)
		a, _ := NewAnalyzer(32)
		n := int(nRaw)%2000 + 10
		for i := 0; i < n; i++ {
			a.Touch(rng.Uint64n(1 << 14))
		}
		p := a.Profile()
		var reuses uint64
		for _, c := range p.Histogram {
			reuses += c
		}
		if p.ColdMisses+reuses != p.Accesses {
			return false
		}
		prev := 1.1
		for _, lines := range []int{1, 4, 16, 64, 256, 1024, 8192} {
			mr := p.MissRate(lines)
			if mr > prev+0.02 { // allow bucket-apportioning slack
				return false
			}
			prev = mr
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictsWorkloadMissRates sanity-checks the analyzer against the
// simulator: the fully-associative LRU prediction at 256 lines should be
// in the same ballpark as the measured 8KB direct-mapped L1 miss rate
// (direct-mapped conflicts push the real number somewhat higher).
func TestPredictsWorkloadMissRates(t *testing.T) {
	spec, _ := workload.ByName("fpppp")
	p, err := AnalyzeSource(isa.NewLimitSource(spec.New(1), 200_000), 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	predicted := p.MissRate(256)
	if predicted < 0.02 || predicted > 0.2 {
		t.Fatalf("fpppp predicted L1 miss %v, want ≈0.09", predicted)
	}
}
