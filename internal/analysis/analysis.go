// Package analysis provides trace-level locality analysis: reuse-distance
// (LRU stack distance) histograms, working-set footprints, and the
// miss-rate curves they imply for fully-associative LRU caches.
//
// This is the instrumentation used to validate the synthetic workload
// models against the paper's Table 2: a model's reuse-distance profile
// determines its miss rate at every cache size simultaneously (Mattson's
// stack algorithm), so one pass over a trace predicts the whole
// size/miss-rate curve the calibration targets.
//
// The stack-distance implementation is an order-statistics tree over the
// LRU stack (O(log n) per access), so multi-million-record traces analyze
// in seconds.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/isa"
)

// treeNode is a node of the order-statistics treap keyed by last-access
// timestamp; Size supports rank queries (= stack distance).
type treeNode struct {
	key      uint64 // last-access timestamp (unique per resident line)
	priority uint64 // treap heap priority
	size     int
	left     *treeNode
	right    *treeNode
}

func nodeSize(n *treeNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *treeNode) update() { n.size = 1 + nodeSize(n.left) + nodeSize(n.right) }

// split partitions t into keys < key and keys >= key.
func split(t *treeNode, key uint64) (l, r *treeNode) {
	if t == nil {
		return nil, nil
	}
	if t.key < key {
		t.right, r = split(t.right, key)
		t.update()
		return t, r
	}
	l, t.left = split(t.left, key)
	t.update()
	return l, t
}

func merge(l, r *treeNode) *treeNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.priority > r.priority:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

// countGreater returns how many keys in t are > key.
func countGreater(t *treeNode, key uint64) int {
	count := 0
	for t != nil {
		if t.key > key {
			count += 1 + nodeSize(t.right)
			t = t.left
		} else {
			t = t.right
		}
	}
	return count
}

// remove deletes key from t (which must contain it).
func remove(t *treeNode, key uint64) *treeNode {
	if t == nil {
		return nil
	}
	if t.key == key {
		return merge(t.left, t.right)
	}
	if key < t.key {
		t.left = remove(t.left, key)
	} else {
		t.right = remove(t.right, key)
	}
	t.update()
	return t
}

// insert adds a node with the given key.
func insert(t *treeNode, n *treeNode) *treeNode {
	if t == nil {
		n.size = 1
		return n
	}
	if n.priority > t.priority {
		n.left, n.right = split(t, n.key)
		n.update()
		return n
	}
	if n.key < t.key {
		t.left = insert(t.left, n)
	} else {
		t.right = insert(t.right, n)
	}
	t.update()
	return t
}

// Profile is the result of analyzing one trace.
type Profile struct {
	// LineBytes is the granularity of the analysis.
	LineBytes int
	// Accesses is the number of memory references analyzed.
	Accesses uint64
	// ColdMisses is the number of first-touch references.
	ColdMisses uint64
	// Footprint is the number of distinct lines touched.
	Footprint uint64
	// Histogram[b] counts accesses whose LRU stack distance fell in
	// bucket b: distance in [2^b, 2^(b+1)) lines (bucket 0 = distance 1).
	Histogram []uint64
}

// Analyzer computes reuse distances incrementally.
type Analyzer struct {
	lineShift  uint
	clock      uint64
	lastAccess map[uint64]uint64 // line -> timestamp key in the tree
	tree       *treeNode
	prioState  uint64
	profile    Profile
}

// NewAnalyzer builds an analyzer at the given line granularity (power of
// two).
func NewAnalyzer(lineBytes int) (*Analyzer, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("analysis: line bytes must be a positive power of two, got %d", lineBytes)
	}
	shift := uint(0)
	for v := lineBytes; v > 1; v >>= 1 {
		shift++
	}
	return &Analyzer{
		lineShift:  shift,
		lastAccess: make(map[uint64]uint64),
		profile:    Profile{LineBytes: lineBytes, Histogram: make([]uint64, 40)},
	}, nil
}

// prio is a tiny splitmix step for treap priorities (deterministic).
func (a *Analyzer) prio() uint64 {
	a.prioState += 0x9e3779b97f4a7c15
	z := a.prioState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 27)
}

// Touch records one memory reference at byte address addr.
func (a *Analyzer) Touch(addr uint64) {
	line := addr >> a.lineShift
	a.clock++
	a.profile.Accesses++
	if last, seen := a.lastAccess[line]; seen {
		// Stack distance = number of distinct lines touched since `last`
		// = count of tree keys newer than last, plus this line itself.
		dist := countGreater(a.tree, last) + 1
		b := bucket(dist)
		a.profile.Histogram[b]++
		a.tree = remove(a.tree, last)
	} else {
		a.profile.ColdMisses++
		a.profile.Footprint++
	}
	a.tree = insert(a.tree, &treeNode{key: a.clock, priority: a.prio()})
	a.lastAccess[line] = a.clock
}

// bucket maps a stack distance (>=1) to its power-of-two histogram bucket.
func bucket(dist int) int {
	b := 0
	for d := dist; d > 1; d >>= 1 {
		b++
	}
	if b >= 40 {
		b = 39
	}
	return b
}

// BucketRange returns the [lo, hi) distance range of histogram bucket b.
func BucketRange(b int) (lo, hi int) {
	return 1 << b, 1 << (b + 1)
}

// Profile returns the accumulated profile.
func (a *Analyzer) Profile() Profile { return a.profile }

// AnalyzeSource drains up to max memory references from a trace source
// (non-memory records are skipped; max <= 0 means all).
func AnalyzeSource(src isa.Source, lineBytes int, max int64) (Profile, error) {
	a, err := NewAnalyzer(lineBytes)
	if err != nil {
		return Profile{}, err
	}
	var seen int64
	for max <= 0 || seen < max {
		rec, ok := src.Next()
		if !ok {
			break
		}
		seen++
		if rec.Op == isa.OpLoad || rec.Op == isa.OpStore {
			a.Touch(rec.Addr)
		}
	}
	return a.Profile(), nil
}

// MissRate predicts the demand miss rate of a fully-associative LRU cache
// with the given number of lines: accesses with stack distance greater
// than the capacity miss, plus cold misses.
func (p Profile) MissRate(cacheLines int) float64 {
	if p.Accesses == 0 {
		return 0
	}
	misses := p.ColdMisses
	for b, count := range p.Histogram {
		lo, hi := BucketRange(b)
		switch {
		case lo > cacheLines:
			misses += count
		case hi <= cacheLines:
			// all hits
		default:
			// The bucket straddles the capacity; apportion linearly.
			frac := float64(hi-cacheLines) / float64(hi-lo)
			misses += uint64(math.Round(float64(count) * frac))
		}
	}
	return float64(misses) / float64(p.Accesses)
}

// WorkingSet returns the smallest cache size (in lines, rounded to a
// power of two) at which the predicted miss rate drops below target.
// Returns 0 if even the full footprint cannot reach it (cold misses).
func (p Profile) WorkingSet(target float64) int {
	for b := 0; b < len(p.Histogram); b++ {
		lines := 1 << (b + 1)
		if p.MissRate(lines) <= target {
			return lines
		}
		if uint64(lines) > 2*p.Footprint {
			break
		}
	}
	return 0
}

// HotBuckets returns the histogram buckets holding at least minFrac of
// all reuse accesses, largest first — a compact locality fingerprint.
func (p Profile) HotBuckets(minFrac float64) []int {
	var reuses uint64
	for _, c := range p.Histogram {
		reuses += c
	}
	if reuses == 0 {
		return nil
	}
	var out []int
	for b, c := range p.Histogram {
		if float64(c)/float64(reuses) >= minFrac {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return p.Histogram[out[i]] > p.Histogram[out[j]]
	})
	return out
}
