package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPrefetchesClassified(t *testing.T) {
	p := Prefetches{Good: 3, Bad: 7}
	if p.Classified() != 10 {
		t.Fatalf("classified = %d", p.Classified())
	}
}

func TestBadGoodRatio(t *testing.T) {
	if r := (Prefetches{Good: 4, Bad: 8}).BadGoodRatio(); r != 2 {
		t.Fatalf("ratio = %v", r)
	}
	// Zero good: ratio continues as bad count to stay finite.
	if r := (Prefetches{Good: 0, Bad: 5}).BadGoodRatio(); r != 5 {
		t.Fatalf("zero-good ratio = %v", r)
	}
	if r := (Prefetches{}).BadGoodRatio(); r != 0 {
		t.Fatalf("empty ratio = %v", r)
	}
}

func TestGoodFraction(t *testing.T) {
	if f := (Prefetches{Good: 1, Bad: 3}).GoodFraction(); f != 0.25 {
		t.Fatalf("fraction = %v", f)
	}
	if f := (Prefetches{}).GoodFraction(); f != 0 {
		t.Fatalf("empty fraction = %v", f)
	}
}

func TestTrafficPrefetchRatio(t *testing.T) {
	tr := Traffic{DemandAccesses: 100, PrefetchAccesses: 41}
	if r := tr.PrefetchRatio(); r != 0.41 {
		t.Fatalf("ratio = %v", r)
	}
	if (Traffic{}).PrefetchRatio() != 0 {
		t.Fatal("idle traffic ratio should be 0")
	}
}

func TestRunIPC(t *testing.T) {
	r := Run{Instructions: 300, Cycles: 100}
	if r.IPC() != 3 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if (Run{}).IPC() != 0 {
		t.Fatal("zero-cycle IPC should be 0")
	}
}

func TestRunMissRates(t *testing.T) {
	r := Run{
		L1DemandAccesses: 1000, L1DemandMisses: 64,
		L2DemandAccesses: 64, L2DemandMisses: 16,
	}
	if r.L1MissRate() != 0.064 {
		t.Fatalf("L1 = %v", r.L1MissRate())
	}
	if r.L2MissRate() != 0.25 {
		t.Fatalf("L2 = %v", r.L2MissRate())
	}
	if (Run{}).L1MissRate() != 0 || (Run{}).L2MissRate() != 0 {
		t.Fatal("idle miss rates should be 0")
	}
}

func TestRunString(t *testing.T) {
	r := Run{Benchmark: "mcf", Filter: "pa", Instructions: 100, Cycles: 50}
	s := r.String()
	for _, want := range []string{"mcf", "pa", "IPC=2.000"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(2, 2.2); math.Abs(s-0.1) > 1e-12 {
		t.Fatalf("speedup = %v", s)
	}
	if s := Speedup(2, 1.8); math.Abs(s+0.1) > 1e-12 {
		t.Fatalf("slowdown = %v", s)
	}
	if Speedup(0, 5) != 0 {
		t.Fatal("zero baseline should be 0")
	}
}

func TestReduction(t *testing.T) {
	if r := Reduction(100, 3); math.Abs(r-0.97) > 1e-12 {
		t.Fatalf("reduction = %v", r)
	}
	if r := Reduction(100, 120); math.Abs(r+0.2) > 1e-12 {
		t.Fatalf("negative reduction = %v", r)
	}
	if Reduction(0, 5) != 0 {
		t.Fatal("zero baseline should be 0")
	}
}

func TestSafeRatio(t *testing.T) {
	if SafeRatio(1, 0) != 0 {
		t.Fatal("zero denominator should be 0")
	}
	if SafeRatio(3, 4) != 0.75 {
		t.Fatal("ratio wrong")
	}
}

// Property: Speedup and Reduction are consistent inverses around the
// baseline: speedup(b, a) = -reduction(b, a) exactly.
func TestPropertySpeedupReductionDual(t *testing.T) {
	f := func(b, a uint16) bool {
		before, after := float64(b)+1, float64(a)
		return math.Abs(Speedup(before, after)+Reduction(before, after)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: GoodFraction is always in [0,1] and consistent with the ratio.
func TestPropertyFractionBounds(t *testing.T) {
	f := func(g, b uint32) bool {
		p := Prefetches{Good: uint64(g), Bad: uint64(b)}
		fr := p.GoodFraction()
		return fr >= 0 && fr <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
