// Package stats defines the measurement model of the reproduction: the
// good/bad prefetch classification of §3, traffic accounting for Figure 2,
// and the derived metrics (IPC, bad/good ratio, normalized reductions) the
// paper's figures report.
package stats

import (
	"fmt"

	"repro/internal/taxonomy"
)

// Prefetches classifies completed prefetches. A prefetch is good iff the
// prefetched line was demand-referenced between fill and eviction; it is
// bad iff it was never referenced in that window (§3). Filtered counts
// prefetches dropped by the pollution filter; squashed and overflowed
// prefetches died in the queue machinery and never touched the cache.
type Prefetches struct {
	Issued       uint64 // entered the L1/prefetch-buffer fill path
	Good         uint64 // referenced before eviction (incl. still-resident referenced lines at end of run)
	Bad          uint64 // evicted (or resident at end) without reference
	Filtered     uint64 // dropped by the pollution filter
	Squashed     uint64 // duplicate squashes (already in cache/queue/in flight)
	Overflow     uint64 // dropped on a full prefetch queue
	ResidentGood uint64 // subset of Good still resident at end of run
	ResidentBad  uint64 // subset of Bad still resident at end of run
}

// Classified returns Good + Bad.
func (p Prefetches) Classified() uint64 { return p.Good + p.Bad }

// BadGoodRatio returns Bad/Good; when Good is zero it returns Bad (the
// natural continuation: ratio per single hypothetical good prefetch) to
// keep the metric finite for plotting, matching how we aggregate means.
func (p Prefetches) BadGoodRatio() float64 {
	if p.Good == 0 {
		return float64(p.Bad)
	}
	return float64(p.Bad) / float64(p.Good)
}

// GoodFraction returns Good / (Good + Bad), or 0 when nothing classified.
func (p Prefetches) GoodFraction() float64 {
	if p.Classified() == 0 {
		return 0
	}
	return float64(p.Good) / float64(p.Classified())
}

// Traffic tracks L1 accesses by source, for Figure 2's split.
type Traffic struct {
	DemandAccesses   uint64 // loads + stores presented to the L1
	PrefetchAccesses uint64 // prefetch fills presented to the L1 (or buffer)
	L2Accesses       uint64
	MemAccesses      uint64
	PrefetchL2       uint64 // prefetch requests reaching the L2
	PrefetchMem      uint64 // prefetch requests reaching memory
}

// PrefetchRatio returns prefetch/demand L1 traffic (Figure 2's metric).
func (t Traffic) PrefetchRatio() float64 {
	if t.DemandAccesses == 0 {
		return 0
	}
	return float64(t.PrefetchAccesses) / float64(t.DemandAccesses)
}

// Run aggregates everything a single simulation produces.
type Run struct {
	Benchmark string
	Filter    string

	Instructions uint64
	Cycles       uint64

	Prefetches Prefetches
	Traffic    Traffic

	L1DemandAccesses uint64
	L1DemandMisses   uint64
	L2DemandAccesses uint64
	L2DemandMisses   uint64

	BranchPredictions    uint64
	BranchMispredictions uint64

	// Port contention.
	PortConflictCycles uint64 // demand accesses delayed by busy ports
	PrefetchPortWaits  uint64 // prefetch issue attempts that found no port

	// Filter activity (copied from the filter's own stats).
	FilterQueries  uint64
	FilterRejected uint64

	// Per-source prefetch issue counts (nsp/sdp/stride/sw).
	BySource map[string]uint64

	// Frontend holds the I-side counters when the run modelled the
	// front end (config.Config.Frontend); nil otherwise. The pointer is
	// omitted from the JSON encoding when nil so D-side-only runs keep
	// their canonical encoding — and therefore the fabric's pinned
	// sweep fingerprints — byte-identical.
	Frontend *Frontend `json:",omitempty"`

	// Taxonomy holds the full Srinivasan prefetch classification when the
	// run was instrumented with Options.Taxonomy; nil otherwise.
	Taxonomy *taxonomy.Counts
}

// Frontend aggregates the I-side counters: the fetch-block stream the
// front end presented to the L1I, the stall cycles fetch misses cost,
// and the instruction-prefetch outcome counters (classified at L1I
// eviction time exactly like the D-side's).
type Frontend struct {
	// IPrefetcher names the instruction-prefetch backend ("none" when
	// only the L1I was modelled).
	IPrefetcher string
	// FetchBlocks counts fetch-block transitions presented to the L1I;
	// same-block fetches are absorbed by the fetch unit.
	FetchBlocks uint64
	// FetchMisses counts fetch blocks that missed the L1I.
	FetchMisses uint64
	// FetchStallCycles counts cycles the front end stalled waiting for
	// an instruction block.
	FetchStallCycles uint64
	// Prefetches are the instruction-prefetch outcome counters.
	Prefetches Prefetches
}

// FetchMissRate returns L1I misses per fetch block.
func (f Frontend) FetchMissRate() float64 {
	if f.FetchBlocks == 0 {
		return 0
	}
	return float64(f.FetchMisses) / float64(f.FetchBlocks)
}

// Pollution returns the fraction of classified instruction prefetches
// that were never referenced before eviction — the I-side pollution
// ratio.
func (f Frontend) Pollution() float64 {
	cl := f.Prefetches.Good + f.Prefetches.Bad
	if cl == 0 {
		return 0
	}
	return float64(f.Prefetches.Bad) / float64(cl)
}

// IPC returns instructions per cycle.
func (r Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// L1MissRate returns demand miss rate at the L1.
func (r Run) L1MissRate() float64 {
	if r.L1DemandAccesses == 0 {
		return 0
	}
	return float64(r.L1DemandMisses) / float64(r.L1DemandAccesses)
}

// L2MissRate returns demand miss rate at the L2 (local: misses per L2
// demand access), matching Table 2's convention.
func (r Run) L2MissRate() float64 {
	if r.L2DemandAccesses == 0 {
		return 0
	}
	return float64(r.L2DemandMisses) / float64(r.L2DemandAccesses)
}

// String summarizes the run for logs.
func (r Run) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f good=%d bad=%d filtered=%d L1miss=%.4f",
		r.Benchmark, r.Filter, r.IPC(), r.Prefetches.Good, r.Prefetches.Bad,
		r.Prefetches.Filtered, r.L1MissRate())
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Speedup returns (after-before)/before, the relative improvement the
// paper's IPC comparisons quote. A zero baseline yields 0.
func Speedup(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before
}

// Reduction returns 1 - after/before: the fractional reduction the
// paper quotes for bad prefetches and traffic. A zero baseline yields 0.
func Reduction(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return 1 - after/before
}

// SafeRatio returns num/den, or 0 when den is 0.
func SafeRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
