package stats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// Property tests for the classification identities every consumer of
// Prefetches assumes. Exercised over randomized counters (seeded, so the
// run is reproducible) and the adversarial corners: zero, max-uint64,
// and good/bad-only populations.

func randomPrefetches(rng *rand.Rand) Prefetches {
	// Mix magnitudes: small counts, large counts, occasional extremes.
	n := func() uint64 {
		switch rng.Intn(4) {
		case 0:
			return uint64(rng.Intn(4)) // 0..3: boundary-heavy
		case 1:
			return uint64(rng.Intn(1_000_000))
		case 2:
			return rng.Uint64() >> 16
		default:
			return rng.Uint64() >> 1 // huge but sum-safe
		}
	}
	return Prefetches{Issued: n(), Good: n(), Bad: n(), Filtered: n(), Squashed: n(), Overflow: n()}
}

func TestPrefetchesClassificationProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []Prefetches{
		{},
		{Good: 1},
		{Bad: 1},
		{Good: math.MaxUint64 >> 1, Bad: math.MaxUint64 >> 1},
	}
	for i := 0; i < 2000; i++ {
		cases = append(cases, randomPrefetches(rng))
	}
	for _, p := range cases {
		if got, want := p.Classified(), p.Good+p.Bad; got != want {
			t.Fatalf("%+v: Classified() = %d, want Good+Bad = %d", p, got, want)
		}
		gf := p.GoodFraction()
		if math.IsNaN(gf) || gf < 0 || gf > 1 {
			t.Fatalf("%+v: GoodFraction() = %v, want within [0,1]", p, gf)
		}
		if p.Classified() == 0 && gf != 0 {
			t.Fatalf("%+v: GoodFraction() = %v with nothing classified, want 0", p, gf)
		}
		r := p.BadGoodRatio()
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			t.Fatalf("%+v: BadGoodRatio() = %v, want finite and non-negative", p, r)
		}
		if p.Good == 0 && r != float64(p.Bad) {
			t.Fatalf("%+v: BadGoodRatio() = %v with zero good, want %v", p, r, float64(p.Bad))
		}
	}
}

// TestSnapshotDiffAdditiveOverIntervals pins the interval-accounting
// identity observability relies on: summing per-interval metric diffs
// must reconstruct the whole-run diff exactly, for any cut points. This
// mirrors how a monitor samples sim.pf.* counters mid-run.
func TestSnapshotDiffAdditiveOverIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	reg := metrics.New()
	names := []string{"sim.pf.issued", "sim.pf.good", "sim.pf.bad", "sim.demand.misses"}

	base := reg.Snapshot()
	whole := metrics.Snapshot{}
	prev := base
	// 10 intervals of random activity; accumulate the per-interval diffs.
	for interval := 0; interval < 10; interval++ {
		for ev := 0; ev < 200; ev++ {
			reg.Counter(names[rng.Intn(len(names))]).Add(uint64(rng.Intn(50)))
		}
		cur := reg.Snapshot()
		whole = whole.Merge(cur.Diff(prev))
		prev = cur
	}
	direct := reg.Snapshot().Diff(base)
	for _, name := range names {
		if whole.Counters[name] != direct.Counters[name] {
			t.Fatalf("%s: interval sum %d != whole-run diff %d",
				name, whole.Counters[name], direct.Counters[name])
		}
	}
}
