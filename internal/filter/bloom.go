// Counting-Bloom rejection filter. Bad evictions insert the prefetched
// line address into a counting Bloom filter; a candidate whose every
// probe sits at or above the reject threshold is predicted bad and
// dropped. Good evictions remove the address again (counting Bloom
// deletion), and a periodic decay halves every counter so stale
// rejections age out after the working set moves — the failure mode the
// paper's purely absorbing table exhibits in the adaptivity experiment.

package filter

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Bloom defaults.
const (
	defaultBloomEntries = 4096
	defaultBloomHashes  = 2
	defaultBloomReject  = 2
	defaultBloomDecay   = 8192
	bloomCounterMax     = 15 // 4-bit counters
)

// bloomMix holds distinct odd multipliers, one per probe.
var bloomMix = [8]uint64{
	0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f,
	0x165667b19e3779f9, 0x27d4eb2f165667c5,
	0x85ebca6b0f4a7c15, 0xcc9e2d51165667b1,
	0x9e3779b185ebca6b, 0xc2b2ae35cc9e2d51,
}

// Bloom is the counting-Bloom rejection backend.
type Bloom struct {
	counters []uint8
	shift    uint
	hashes   int
	reject   uint8
	decay    uint64 // trainings between halvings; 0 disables
	training uint64
	stats    core.Stats

	// Decays counts decay sweeps performed.
	Decays uint64
}

// NewBloom builds a counting-Bloom filter. Zero parameters select the
// defaults; decay < 0 disables aging.
func NewBloom(entries, hashes, reject, decay int) (*Bloom, error) {
	if entries == 0 {
		entries = defaultBloomEntries
	}
	if hashes == 0 {
		hashes = defaultBloomHashes
	}
	if reject == 0 {
		reject = defaultBloomReject
	}
	if decay == 0 {
		decay = defaultBloomDecay
	}
	if entries < 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("filter: bloom entries must be a positive power of two, got %d", entries)
	}
	if hashes < 1 || hashes > len(bloomMix) {
		return nil, fmt.Errorf("filter: bloom hashes must be in [1,%d], got %d", len(bloomMix), hashes)
	}
	if reject < 1 || reject > bloomCounterMax {
		return nil, fmt.Errorf("filter: bloom reject threshold must be in [1,%d], got %d", bloomCounterMax, reject)
	}
	b := &Bloom{
		counters: make([]uint8, entries),
		hashes:   hashes,
		reject:   uint8(reject),
	}
	if decay > 0 {
		b.decay = uint64(decay)
	}
	bits := uint(0)
	for v := entries; v > 1; v >>= 1 {
		bits++
	}
	b.shift = 64 - bits
	return b, nil
}

// probe returns the i-th counter index for a line address.
func (b *Bloom) probe(lineAddr uint64, i int) uint64 {
	return ((lineAddr ^ (lineAddr >> 17)) * bloomMix[i]) >> b.shift
}

// Predict reports the current decision for req without touching stats:
// reject only when every probe is at or above the threshold.
//
//pflint:hotpath
func (b *Bloom) Predict(req core.Request) bool {
	for i := 0; i < b.hashes; i++ {
		if b.counters[b.probe(req.LineAddr, i)] < b.reject {
			return true
		}
	}
	return false
}

// Allow implements core.Filter. An empty filter allows everything, so
// first-touch prefetches always issue.
func (b *Bloom) Allow(req core.Request) bool {
	b.stats.Queries++
	if b.Predict(req) {
		return true
	}
	b.stats.Rejected++
	return false
}

// Train implements core.Filter: bad evictions insert, good evictions
// remove, and every decay interval halves all counters.
//
//pflint:hotpath
func (b *Bloom) Train(fb core.Feedback) {
	if fb.Referenced {
		b.stats.TrainGood++
	} else {
		b.stats.TrainBad++
	}
	for i := 0; i < b.hashes; i++ {
		idx := b.probe(fb.LineAddr, i)
		c := b.counters[idx]
		if fb.Referenced {
			if c > 0 {
				b.counters[idx] = c - 1
			}
		} else if c < bloomCounterMax {
			b.counters[idx] = c + 1
		}
	}
	b.training++
	if b.decay > 0 && b.training%b.decay == 0 {
		b.Decays++
		for i, c := range b.counters {
			b.counters[i] = c >> 1
		}
	}
}

// Name implements core.Filter.
func (b *Bloom) Name() string { return "bloom" }

// Stats implements core.Filter.
func (b *Bloom) Stats() core.Stats { return b.stats }

// ResetStats zeroes the activity counters while keeping the Bloom state
// warm (warmup boundary). The training tick keeps running so decay
// cadence is unaffected by measurement boundaries.
func (b *Bloom) ResetStats() {
	b.stats = core.Stats{}
	b.Decays = 0
}

// Entries returns the counter array length.
func (b *Bloom) Entries() int { return len(b.counters) }

// SizeBytes returns the storage cost: 4 bits per counter.
func (b *Bloom) SizeBytes() int { return len(b.counters) / 2 }

// Occupancy returns how many counters are currently non-zero.
func (b *Bloom) Occupancy() int {
	n := 0
	for _, c := range b.counters {
		if c > 0 {
			n++
		}
	}
	return n
}

// DumpMetrics implements core.MetricsDumper.
func (b *Bloom) DumpMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + ".queries").Set(b.stats.Queries)
	reg.Counter(prefix + ".rejected").Set(b.stats.Rejected)
	reg.Counter(prefix + ".train_good").Set(b.stats.TrainGood)
	reg.Counter(prefix + ".train_bad").Set(b.stats.TrainBad)
	reg.Counter(prefix + ".decays").Set(b.Decays)
	reg.Counter(prefix + ".occupancy").Set(uint64(b.Occupancy()))
}
