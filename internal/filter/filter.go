// Package filter is the pollution-filter zoo: a registry of named,
// config-constructible backends implementing core.Filter.
//
// The paper's contribution is one point in a much larger design space of
// prefetch-pollution filters. This package makes the mechanism pluggable:
//
//   - the paper's PA/PC 2-bit history tables (internal/core), wrapped as
//     the baseline backends and bit-identical to driving core directly;
//   - a hashed-perceptron filter (perceptron.go) after "Data Cache
//     Prefetching with Perceptron Learning" (arXiv:1712.00905);
//   - a counting-Bloom rejection filter with periodic decay (bloom.go);
//   - a tournament selector that set-duels two backends with a PSEL
//     counter (tournament.go).
//
// Every backend trains on the same eviction-time RIB signal the paper
// uses (core.Feedback), so a head-to-head comparison isolates the
// prediction structure, not the training oracle. Backends are built from
// a validated config.FilterConfig via New; the registry is open so tests
// and downstream code can add experimental backends.
package filter

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
)

// Predictor is the side-effect-free probe a backend must answer to take
// part in a tournament: the decision Allow would make for req, without
// perturbing any statistics.
type Predictor interface {
	Predict(req core.Request) bool
}

// Constructor builds one backend from a validated filter configuration.
type Constructor func(cfg config.FilterConfig) (core.Filter, error)

var (
	regMu    sync.RWMutex
	registry = map[config.FilterKind]Constructor{}
)

// Register adds (or replaces) a backend constructor under kind. The
// canonical form of the kind is registered, so aliases resolve to the
// same constructor.
func Register(kind config.FilterKind, ctor Constructor) {
	if ctor == nil {
		panic("filter: nil constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[kind.Canonical()] = ctor
}

// Registered reports whether kind (or its canonical form) has a
// registered constructor.
func Registered(kind config.FilterKind) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[kind.Canonical()]
	return ok
}

// Kinds returns every registered backend kind, sorted. Aliases
// (table-pa, table-pc) are not listed; they resolve to their canonical
// kinds.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	//pflint:allow determinism/maprange key collection; the result is sorted below
	for k := range registry {
		out = append(out, string(k))
	}
	sort.Strings(out)
	return out
}

// New builds the backend cfg names. The config is validated first; an
// unregistered kind reports the registered alternatives.
func New(cfg config.FilterConfig) (core.Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	regMu.RLock()
	ctor, ok := registry[cfg.Kind.Canonical()]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("filter: no registered backend for kind %q (registered: %v)", cfg.Kind, Kinds())
	}
	return ctor(cfg)
}

func init() {
	// The paper baselines delegate to internal/core so the table path is
	// the exact code (and therefore the exact simulated behaviour) the
	// figure experiments always used.
	for _, k := range []config.FilterKind{config.FilterNone, config.FilterPA, config.FilterPC, config.FilterAdaptive} {
		k := k
		Register(k, func(cfg config.FilterConfig) (core.Filter, error) {
			cfg.Kind = k
			return core.FromConfig(cfg)
		})
	}
	// The dead-block gate lives in the cache hierarchy (it needs the L1's
	// victim state); its core filter slot is pass-through, exactly as
	// sim.Run has always wired it.
	Register(config.FilterDeadBlock, func(config.FilterConfig) (core.Filter, error) {
		return core.NewNull(), nil
	})
	Register(config.FilterStatic, func(config.FilterConfig) (core.Filter, error) {
		return nil, fmt.Errorf("filter: static filter requires a profiling run; use sim.RunStatic")
	})
	Register(config.FilterPerceptron, func(cfg config.FilterConfig) (core.Filter, error) {
		return NewPerceptron(cfg.PerceptronEntries, cfg.PerceptronTheta)
	})
	Register(config.FilterBloom, func(cfg config.FilterConfig) (core.Filter, error) {
		return NewBloom(cfg.BloomEntries, cfg.BloomHashes, cfg.BloomReject, cfg.BloomDecay)
	})
	Register(config.FilterTournament, newTournamentFromConfig)
}

// Sweepable returns the registered kinds that can run end-to-end in one
// pass — everything except the static filter, which needs a separate
// profiling run. This is the backend list "-filters all" and the serving
// layer's filters dimension expand to.
func Sweepable() []string {
	out := Kinds()
	trimmed := out[:0]
	for _, k := range out {
		if k == string(config.FilterStatic) {
			continue
		}
		trimmed = append(trimmed, k)
	}
	return trimmed
}
