package filter

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
)

func req(line, pc uint64) core.Request {
	return core.Request{LineAddr: line, TriggerPC: pc}
}

// fcfg returns a valid config for kind with the standard table size.
func fcfg(kind config.FilterKind) config.FilterConfig {
	return config.FilterConfig{Kind: kind, TableEntries: 4096}
}

func bad(line, pc uint64) core.Feedback {
	return core.Feedback{LineAddr: line, TriggerPC: pc, Referenced: false}
}

func good(line, pc uint64) core.Feedback {
	return core.Feedback{LineAddr: line, TriggerPC: pc, Referenced: true}
}

// --- registry ---

func TestRegistryKinds(t *testing.T) {
	for _, k := range []config.FilterKind{
		config.FilterNone, config.FilterPA, config.FilterPC,
		config.FilterAdaptive, config.FilterDeadBlock, config.FilterStatic,
		config.FilterPerceptron, config.FilterBloom, config.FilterTournament,
	} {
		if !Registered(k) {
			t.Errorf("kind %q not registered", k)
		}
	}
	// Aliases resolve to their canonical kinds.
	if !Registered(config.FilterTablePA) || !Registered(config.FilterTablePC) {
		t.Error("table-pa/table-pc aliases should resolve to registered kinds")
	}
	kinds := Kinds()
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("Kinds() not sorted/unique: %v", kinds)
		}
	}
	for _, k := range Sweepable() {
		if k == string(config.FilterStatic) {
			t.Error("Sweepable() must exclude the static filter")
		}
	}
	if len(Sweepable()) != len(kinds)-1 {
		t.Errorf("Sweepable() = %v, want Kinds() minus static (%v)", Sweepable(), kinds)
	}
}

func TestNewUnknownKindListsBackends(t *testing.T) {
	_, err := New(config.FilterConfig{Kind: "no-such-filter", TableEntries: 4096})
	if err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestNewStaticRefuses(t *testing.T) {
	_, err := New(fcfg(config.FilterStatic))
	if err == nil || !strings.Contains(err.Error(), "profiling") {
		t.Fatalf("static kind should explain the profiling requirement, got %v", err)
	}
}

func TestNewBaselineDelegatesToCore(t *testing.T) {
	// The registry's table backends must be the exact core implementations
	// so filter behaviour (and simulation fingerprints) cannot drift.
	for _, kind := range []config.FilterKind{
		config.FilterPA, config.FilterPC, config.FilterTablePA, config.FilterTablePC,
	} {
		f, err := New(fcfg(kind))
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		if _, ok := f.(*core.TableFilter); !ok {
			t.Errorf("New(%q) = %T, want *core.TableFilter", kind, f)
		}
	}
	f, err := New(fcfg(config.FilterNone))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(*core.Null); !ok {
		t.Errorf("New(none) = %T, want *core.Null", f)
	}
	f, err = New(fcfg(config.FilterDeadBlock))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(*core.Null); !ok {
		t.Errorf("New(deadblock) = %T, want pass-through *core.Null", f)
	}
}

func TestAliasBuildsIdenticalTable(t *testing.T) {
	a, err := New(config.FilterConfig{Kind: config.FilterTablePA, TableEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(config.FilterConfig{Kind: config.FilterPA, TableEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Drive both with the same stream; decisions must agree everywhere.
	for i := uint64(0); i < 2048; i++ {
		line, pc := i*0x40, 0x1000+i%7*4
		a.Train(core.Feedback{LineAddr: line, TriggerPC: pc, Referenced: i%3 == 0})
		b.Train(core.Feedback{LineAddr: line, TriggerPC: pc, Referenced: i%3 == 0})
		if a.Allow(req(line, pc)) != b.Allow(req(line, pc)) {
			t.Fatalf("alias table-pa diverged from pa at step %d", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("alias stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// --- perceptron ---

func TestPerceptronFirstTouchAllows(t *testing.T) {
	p, err := NewPerceptron(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Allow(req(0xabc0, 0x400)) {
		t.Error("untrained perceptron must allow (zero weight sum)")
	}
	if p.Entries() != defaultPerceptronEntries {
		t.Errorf("Entries() = %d, want default %d", p.Entries(), defaultPerceptronEntries)
	}
	if p.SizeBytes() <= 0 {
		t.Error("SizeBytes() must be positive")
	}
}

func TestPerceptronLearnsToReject(t *testing.T) {
	p, err := NewPerceptron(1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	line, pc := uint64(0x1f40), uint64(0x400)
	for i := 0; i < 16; i++ {
		p.Train(bad(line, pc))
	}
	if p.Allow(req(line, pc)) {
		t.Fatal("perceptron should reject after repeated bad feedback")
	}
	// Retraining with good feedback flips it back.
	for i := 0; i < 64; i++ {
		p.Train(good(line, pc))
	}
	if !p.Allow(req(line, pc)) {
		t.Fatal("perceptron should re-allow after repeated good feedback")
	}
	s := p.Stats()
	if s.TrainBad != 16 || s.TrainGood != 64 {
		t.Errorf("training stats = %+v", s)
	}
}

func TestPerceptronThresholdStopsUpdates(t *testing.T) {
	p, err := NewPerceptron(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	line, pc := uint64(0x2000), uint64(0x800)
	for i := 0; i < 100; i++ {
		p.Train(good(line, pc))
	}
	// Confidence saturates well before 100 trainings; the thresholded rule
	// must have stopped moving weights once |sum| cleared theta.
	if p.TrainUpdates >= 100 {
		t.Errorf("TrainUpdates = %d, want < 100 (thresholded rule)", p.TrainUpdates)
	}
	if p.TrainUpdates == 0 {
		t.Error("TrainUpdates must count the initial updates")
	}
}

func TestPerceptronSourceFeatureSeparates(t *testing.T) {
	p, err := NewPerceptron(1024, 30)
	if err != nil {
		t.Fatal(err)
	}
	line, pc := uint64(0x3000), uint64(0x900)
	// Same line+PC, different prefetcher: train one source bad hard.
	for i := 0; i < 40; i++ {
		p.Train(core.Feedback{LineAddr: line, TriggerPC: pc, Referenced: false, Source: core.SrcNSP})
	}
	rNSP := core.Request{LineAddr: line, TriggerPC: pc, Source: core.SrcNSP}
	if p.Predict(rNSP) {
		t.Fatal("trained-bad source should be rejected")
	}
	// The source-tagged feature gives the other prefetcher a higher sum:
	// three of four features are shared, but not all four.
	sNSP := p.sum(p.features(line, pc, core.SrcNSP))
	sStride := p.sum(p.features(line, pc, core.SrcStride))
	if sStride <= sNSP {
		t.Errorf("source feature not separating: sum(stride)=%d sum(nsp)=%d", sStride, sNSP)
	}
}

func TestPerceptronRejectsBadParams(t *testing.T) {
	if _, err := NewPerceptron(100, 0); err == nil {
		t.Error("non-power-of-two entries must fail")
	}
	if _, err := NewPerceptron(0, -1); err == nil {
		t.Error("negative theta must fail")
	}
}

// --- bloom ---

func TestBloomFirstTouchAllows(t *testing.T) {
	b, err := NewBloom(0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allow(req(0x40, 0)) {
		t.Error("empty bloom must allow")
	}
	if b.Entries() != defaultBloomEntries || b.SizeBytes() != defaultBloomEntries/2 {
		t.Errorf("Entries=%d SizeBytes=%d", b.Entries(), b.SizeBytes())
	}
}

func TestBloomLearnsAndForgets(t *testing.T) {
	b, err := NewBloom(4096, 2, 2, -1) // decay disabled
	if err != nil {
		t.Fatal(err)
	}
	line := uint64(0x7c0)
	b.Train(bad(line, 0))
	if !b.Allow(req(line, 0)) {
		t.Fatal("one bad training must not reach the reject threshold of 2")
	}
	b.Train(bad(line, 0))
	if b.Allow(req(line, 0)) {
		t.Fatal("two bad trainings must reject at threshold 2")
	}
	// Counting-Bloom deletion: good feedback removes the entry.
	b.Train(good(line, 0))
	if !b.Allow(req(line, 0)) {
		t.Fatal("good feedback must decrement below the reject threshold")
	}
	if b.Occupancy() == 0 {
		t.Error("occupancy should reflect remaining non-zero counters")
	}
}

func TestBloomDecayAgesOutRejections(t *testing.T) {
	b, err := NewBloom(1024, 2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	line := uint64(0x1140)
	for i := 0; i < 6; i++ {
		b.Train(bad(line, 0))
	}
	if b.Allow(req(line, 0)) {
		t.Fatal("line should be rejected before decay")
	}
	// Unrelated trainings tick the decay clock; two sweeps halve 6 -> 3 -> 1.
	for i := uint64(1); b.Decays < 2; i++ {
		b.Train(good(0x100000+i*0x40, 0))
	}
	if !b.Allow(req(line, 0)) {
		t.Fatal("decay should age the rejection back below threshold 4")
	}
}

func TestBloomRejectsBadParams(t *testing.T) {
	if _, err := NewBloom(1000, 0, 0, 0); err == nil {
		t.Error("non-power-of-two entries must fail")
	}
	if _, err := NewBloom(0, 9, 0, 0); err == nil {
		t.Error("hashes > 8 must fail")
	}
	if _, err := NewBloom(0, 0, 16, 0); err == nil {
		t.Error("reject threshold > counter max must fail")
	}
}

// --- tournament ---

func TestTournamentConfigDefaults(t *testing.T) {
	f, err := New(fcfg(config.FilterTournament))
	if err != nil {
		t.Fatal(err)
	}
	tour, ok := f.(*Tournament)
	if !ok {
		t.Fatalf("New(tournament) = %T", f)
	}
	a, b := tour.Sides()
	if _, ok := a.(*core.TableFilter); !ok {
		t.Errorf("default side A = %T, want *core.TableFilter (pa)", a)
	}
	if _, ok := b.(*Perceptron); !ok {
		t.Errorf("default side B = %T, want *Perceptron", b)
	}
	v, max := tour.PSEL()
	if max != 1<<defaultPselBits-1 || v != 1<<(defaultPselBits-1) {
		t.Errorf("PSEL = %d/%d, want midpoint of %d-bit counter", v, max, defaultPselBits)
	}
	if got := tour.Name(); got != "tournament(pa,perceptron)" {
		t.Errorf("Name() = %q", got)
	}
}

func TestTournamentRejectsBadSides(t *testing.T) {
	cfgA := fcfg(config.FilterTournament)
	cfgA.TournamentA = config.FilterTournament
	_, err := New(cfgA)
	if err == nil {
		t.Error("nested tournament must be rejected")
	}
	cfgB := fcfg(config.FilterTournament)
	cfgB.TournamentB = config.FilterStatic
	_, err = New(cfgB)
	if err == nil {
		t.Error("static tournament side must be rejected")
	}
}

// alwaysFilter is a deterministic test backend.
type alwaysFilter struct {
	allow  bool
	stats  core.Stats
	trains int
}

func (f *alwaysFilter) Predict(core.Request) bool { return f.allow }
func (f *alwaysFilter) Allow(core.Request) bool   { f.stats.Queries++; return f.allow }
func (f *alwaysFilter) Train(core.Feedback)       { f.trains++ }
func (f *alwaysFilter) Name() string              { return "always" }
func (f *alwaysFilter) Stats() core.Stats         { return f.stats }

func TestTournamentPselConverges(t *testing.T) {
	// Side A always predicts "good", side B always predicts "bad". Feed
	// uniformly bad-outcome feedback: B is always right, so PSEL must run
	// to zero and follower keys must adopt B's rejections.
	a := &alwaysFilter{allow: true}
	b := &alwaysFilter{allow: false}
	tour, err := NewTournament(a, b, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4096; i++ {
		tour.Train(bad(i*0x40, 0))
	}
	if v, _ := tour.PSEL(); v != 0 {
		t.Fatalf("PSEL = %d, want 0 (B always right)", v)
	}
	if tour.BWins == 0 || tour.AWins != 0 {
		t.Fatalf("wins A=%d B=%d, want only B wins", tour.AWins, tour.BWins)
	}
	if a.trains != 4096 || b.trains != 4096 {
		t.Fatalf("both sides must train on all feedback: A=%d B=%d", a.trains, b.trains)
	}
	// A follower key (neither leader set) must now follow B.
	follower := uint64(0)
	for line := uint64(0); ; line += 0x40 {
		if bkt := duelBucket(line); bkt >= 2*leaderBuckets {
			follower = line
			break
		}
	}
	if tour.Allow(req(follower, 0)) {
		t.Error("follower key should adopt losing-side-B's rejection")
	}
	// Leader-A keys still use A regardless of PSEL.
	leaderA := uint64(0)
	for line := uint64(0x40); ; line += 0x40 {
		if duelBucket(line) < leaderBuckets {
			leaderA = line
			break
		}
	}
	if !tour.Allow(req(leaderA, 0)) {
		t.Error("leader-A key must keep using side A")
	}
}

func TestTournamentPredictHasNoSideEffects(t *testing.T) {
	f, err := New(fcfg(config.FilterTournament))
	if err != nil {
		t.Fatal(err)
	}
	tour := f.(*Tournament)
	tour.Predict(req(0x40, 0x100))
	if s := tour.Stats(); s.Queries != 0 {
		t.Errorf("Predict must not count queries, got %+v", s)
	}
}

// --- metrics / reset ---

func TestBackendsDumpMetricsAndReset(t *testing.T) {
	for _, kind := range []config.FilterKind{
		config.FilterPerceptron, config.FilterBloom, config.FilterTournament,
	} {
		f, err := New(fcfg(kind))
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		f.Allow(req(0x40, 0))
		f.Train(bad(0x40, 0))
		reg := metrics.New()
		if d, ok := f.(core.MetricsDumper); ok {
			d.DumpMetrics(reg, "filter")
			d.DumpMetrics(nil, "filter") // nil registry must be a no-op
		} else {
			t.Fatalf("%q does not implement MetricsDumper", kind)
		}
		if len(reg.Snapshot().Counters) == 0 {
			t.Errorf("%q dumped no metrics", kind)
		}
		if r, ok := f.(interface{ ResetStats() }); ok {
			r.ResetStats()
		} else {
			t.Fatalf("%q does not implement ResetStats", kind)
		}
		if s := f.Stats(); s != (core.Stats{}) {
			t.Errorf("%q stats not reset: %+v", kind, s)
		}
	}
}
