// Hashed-perceptron pollution filter, after "Data Cache Prefetching with
// Perceptron Learning" (arXiv:1712.00905) and the perceptron branch
// predictor it descends from. Each prefetch hashes a small set of
// features into per-feature weight tables; the sign of the summed
// weights is the prediction, and eviction-time feedback trains every
// contributing weight with the classic thresholded perceptron rule.

package filter

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Perceptron defaults.
const (
	defaultPerceptronEntries = 1024
	defaultPerceptronTheta   = 8
	// Weight saturation bounds: 6-bit signed weights.
	weightMin = -32
	weightMax = 31
	// perceptronFeatures is the fixed feature count (see features()).
	perceptronFeatures = 4
)

// Feature-mixing multipliers: distinct odd constants so the same key
// lands on uncorrelated rows of each table (Fibonacci hashing family).
var featureMix = [perceptronFeatures]uint64{
	0x9e3779b97f4a7c15,
	0xc2b2ae3d27d4eb4f,
	0x165667b19e3779f9,
	0x27d4eb2f165667c5,
}

// Perceptron is the hashed-perceptron backend: one weight table per
// feature, summed at predict time.
type Perceptron struct {
	tables [perceptronFeatures][]int8
	shift  uint
	theta  int32
	stats  core.Stats

	// TrainUpdates counts trainings that actually moved weights (the
	// thresholded rule skips confidently-correct predictions).
	TrainUpdates uint64
}

// NewPerceptron builds a perceptron filter with the given per-feature
// table size and training threshold; zero selects the defaults.
func NewPerceptron(entries, theta int) (*Perceptron, error) {
	if entries == 0 {
		entries = defaultPerceptronEntries
	}
	if theta == 0 {
		theta = defaultPerceptronTheta
	}
	if entries < 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("filter: perceptron entries must be a positive power of two, got %d", entries)
	}
	if theta < 0 {
		return nil, fmt.Errorf("filter: perceptron theta must be non-negative, got %d", theta)
	}
	p := &Perceptron{theta: int32(theta)}
	bits := uint(0)
	for v := entries; v > 1; v >>= 1 {
		bits++
	}
	p.shift = 64 - bits
	for i := range p.tables {
		p.tables[i] = make([]int8, entries)
	}
	return p, nil
}

// features derives the per-table row indices for one prefetch identity.
// The feature set is the one the issue/related work names: the line
// address (exact and region-granular), the trigger PC, and the
// prefetcher id folded with PC and address.
func (p *Perceptron) features(lineAddr, triggerPC uint64, src core.Source) (idx [perceptronFeatures]uint64) {
	pc := triggerPC >> 2
	raw := [perceptronFeatures]uint64{
		lineAddr,
		lineAddr >> 6,
		pc,
		pc ^ lineAddr ^ (uint64(src) << 40),
	}
	for i, r := range raw {
		idx[i] = (r * featureMix[i]) >> p.shift
	}
	return idx
}

// sum returns the weight sum for the given feature rows.
func (p *Perceptron) sum(idx [perceptronFeatures]uint64) int32 {
	var s int32
	for i := range p.tables {
		s += int32(p.tables[i][idx[i]])
	}
	return s
}

// Predict reports the current decision for req without touching stats.
//
//pflint:hotpath
func (p *Perceptron) Predict(req core.Request) bool {
	return p.sum(p.features(req.LineAddr, req.TriggerPC, req.Source)) >= 0
}

// Allow implements core.Filter: allow iff the weight sum is
// non-negative. Untrained weights sum to zero, so first-touch prefetches
// issue — the same weakly-good initial stance as the paper's table.
func (p *Perceptron) Allow(req core.Request) bool {
	p.stats.Queries++
	if p.Predict(req) {
		return true
	}
	p.stats.Rejected++
	return false
}

// Train implements core.Filter with the thresholded perceptron rule:
// update only when the prediction disagreed with the outcome or the
// confidence |sum| was at or below theta.
//
//pflint:hotpath
func (p *Perceptron) Train(fb core.Feedback) {
	if fb.Referenced {
		p.stats.TrainGood++
	} else {
		p.stats.TrainBad++
	}
	idx := p.features(fb.LineAddr, fb.TriggerPC, fb.Source)
	s := p.sum(idx)
	predictedGood := s >= 0
	if predictedGood == fb.Referenced && abs32(s) > p.theta {
		return
	}
	p.TrainUpdates++
	for i := range p.tables {
		w := p.tables[i][idx[i]]
		if fb.Referenced {
			if w < weightMax {
				w++
			}
		} else if w > weightMin {
			w--
		}
		p.tables[i][idx[i]] = w
	}
}

// Name implements core.Filter.
func (p *Perceptron) Name() string { return "perceptron" }

// Stats implements core.Filter.
func (p *Perceptron) Stats() core.Stats { return p.stats }

// ResetStats zeroes the activity counters while keeping the learned
// weights warm (warmup boundary).
func (p *Perceptron) ResetStats() {
	p.stats = core.Stats{}
	p.TrainUpdates = 0
}

// Entries returns the per-feature table length.
func (p *Perceptron) Entries() int { return len(p.tables[0]) }

// SizeBytes returns the storage cost: 6-bit weights packed, per feature.
func (p *Perceptron) SizeBytes() int {
	return perceptronFeatures * len(p.tables[0]) * 6 / 8
}

// DumpMetrics implements core.MetricsDumper.
func (p *Perceptron) DumpMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + ".queries").Set(p.stats.Queries)
	reg.Counter(prefix + ".rejected").Set(p.stats.Rejected)
	reg.Counter(prefix + ".train_good").Set(p.stats.TrainGood)
	reg.Counter(prefix + ".train_bad").Set(p.stats.TrainBad)
	reg.Counter(prefix + ".train_updates").Set(p.TrainUpdates)
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
