// Tournament selector: set-duelling between two backends with a PSEL
// counter, the mechanism dynamic cache-insertion policies (DIP/DRRIP)
// use to pick a policy at runtime. A small sampled set of keys always
// uses backend A ("leader A" keys), another always uses backend B, and
// everyone else follows whichever side the PSEL counter currently
// favours. Eviction feedback on leader keys moves the PSEL toward the
// side whose prediction matched the outcome; both backends train on all
// feedback so the loser stays warm and can win later phases.

package filter

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Tournament defaults.
const (
	defaultPselBits = 10
	// duelBuckets partitions the key space; the first leaderBuckets
	// buckets lead for A, the next leaderBuckets for B.
	duelBuckets   = 64
	leaderBuckets = 4
)

// Tournament is the set-duelling backend selector.
type Tournament struct {
	a, b     core.Filter
	ap, bp   Predictor
	psel     uint32
	pselMax  uint32
	pselInit uint32
	stats    core.Stats

	// AWins/BWins count leader-key feedback events where exactly one
	// side predicted the outcome correctly (PSEL movements).
	AWins uint64
	BWins uint64
}

// NewTournament duels backends a and b. Both must implement Predictor
// (a side-effect-free probe); pselBits sizes the selector counter.
func NewTournament(a, b core.Filter, pselBits int) (*Tournament, error) {
	if pselBits == 0 {
		pselBits = defaultPselBits
	}
	if pselBits < 1 || pselBits > 20 {
		return nil, fmt.Errorf("filter: tournament PSEL bits must be in [1,20], got %d", pselBits)
	}
	ap, okA := a.(Predictor)
	bp, okB := b.(Predictor)
	if !okA || !okB {
		return nil, fmt.Errorf("filter: tournament sides must implement Predict (got %T, %T)", a, b)
	}
	max := uint32(1)<<uint(pselBits) - 1
	mid := uint32(1) << uint(pselBits-1)
	return &Tournament{a: a, b: b, ap: ap, bp: bp, psel: mid, pselMax: max, pselInit: mid}, nil
}

// newTournamentFromConfig resolves the two duelling sides from the
// registry. The sides inherit the table/perceptron/bloom parameters of
// the same FilterConfig, so a tournament of "pa" vs "perceptron" duels
// exactly the backends those kinds would build standalone.
func newTournamentFromConfig(cfg config.FilterConfig) (core.Filter, error) {
	kindA := cfg.TournamentA
	if kindA == "" {
		kindA = config.FilterPA
	}
	kindB := cfg.TournamentB
	if kindB == "" {
		kindB = config.FilterPerceptron
	}
	side := func(kind config.FilterKind) (core.Filter, error) {
		sideCfg := cfg
		sideCfg.Kind = kind
		sideCfg.TournamentA, sideCfg.TournamentB = "", ""
		return New(sideCfg)
	}
	a, err := side(kindA)
	if err != nil {
		return nil, fmt.Errorf("filter: tournament side A: %w", err)
	}
	b, err := side(kindB)
	if err != nil {
		return nil, fmt.Errorf("filter: tournament side B: %w", err)
	}
	return NewTournament(a, b, cfg.TournamentPselBits)
}

// duelBucket maps a line address onto its duel bucket.
func duelBucket(lineAddr uint64) uint64 {
	return ((lineAddr ^ (lineAddr >> 13)) * 0x9e3779b97f4a7c15) >> 58 % duelBuckets
}

// decide returns the active side's prediction for req.
func (t *Tournament) decide(req core.Request) bool {
	switch bucket := duelBucket(req.LineAddr); {
	case bucket < leaderBuckets:
		return t.ap.Predict(req)
	case bucket < 2*leaderBuckets:
		return t.bp.Predict(req)
	case t.psel >= t.pselInit:
		// High PSEL favours A (leader-A wins increment).
		return t.ap.Predict(req)
	default:
		return t.bp.Predict(req)
	}
}

// Predict reports the current decision for req without touching stats.
func (t *Tournament) Predict(req core.Request) bool { return t.decide(req) }

// Allow implements core.Filter.
func (t *Tournament) Allow(req core.Request) bool {
	t.stats.Queries++
	if t.decide(req) {
		return true
	}
	t.stats.Rejected++
	return false
}

// Train implements core.Filter: score the duel on leader keys before
// training, then train both sides on the shared feedback.
func (t *Tournament) Train(fb core.Feedback) {
	if fb.Referenced {
		t.stats.TrainGood++
	} else {
		t.stats.TrainBad++
	}
	if bucket := duelBucket(fb.LineAddr); bucket < 2*leaderBuckets {
		req := core.Request{LineAddr: fb.LineAddr, TriggerPC: fb.TriggerPC, Source: fb.Source}
		aRight := t.ap.Predict(req) == fb.Referenced
		bRight := t.bp.Predict(req) == fb.Referenced
		if aRight && !bRight {
			t.AWins++
			if t.psel < t.pselMax {
				t.psel++
			}
		} else if bRight && !aRight {
			t.BWins++
			if t.psel > 0 {
				t.psel--
			}
		}
	}
	t.a.Train(fb)
	t.b.Train(fb)
}

// Name implements core.Filter.
func (t *Tournament) Name() string {
	return "tournament(" + t.a.Name() + "," + t.b.Name() + ")"
}

// Stats implements core.Filter.
func (t *Tournament) Stats() core.Stats { return t.stats }

// ResetStats zeroes activity counters on both sides while keeping all
// learned state — including the PSEL — warm (warmup boundary).
func (t *Tournament) ResetStats() {
	t.stats = core.Stats{}
	t.AWins, t.BWins = 0, 0
	if r, ok := t.a.(interface{ ResetStats() }); ok {
		r.ResetStats()
	}
	if r, ok := t.b.(interface{ ResetStats() }); ok {
		r.ResetStats()
	}
}

// PSEL exposes the selector counter (introspection and tests).
func (t *Tournament) PSEL() (value, max uint32) { return t.psel, t.pselMax }

// Sides exposes the duelling backends.
func (t *Tournament) Sides() (a, b core.Filter) { return t.a, t.b }

// DumpMetrics implements core.MetricsDumper, nesting each side's state.
func (t *Tournament) DumpMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + ".queries").Set(t.stats.Queries)
	reg.Counter(prefix + ".rejected").Set(t.stats.Rejected)
	reg.Counter(prefix + ".train_good").Set(t.stats.TrainGood)
	reg.Counter(prefix + ".train_bad").Set(t.stats.TrainBad)
	reg.Counter(prefix + ".psel").Set(uint64(t.psel))
	reg.Counter(prefix + ".a_wins").Set(t.AWins)
	reg.Counter(prefix + ".b_wins").Set(t.BWins)
	if d, ok := t.a.(core.MetricsDumper); ok {
		d.DumpMetrics(reg, prefix+".a")
	}
	if d, ok := t.b.(core.MetricsDumper); ok {
		d.DumpMetrics(reg, prefix+".b")
	}
}
