// The cost model: turning recorded wall-time histograms into the
// longest-runs-first ordering the scheduler shards by.

package sched

import "repro/internal/metrics"

// CostModel estimates a job's relative wall time from a grouping label
// (the experiment harness groups by benchmark name). Estimates only need
// to be ordinally right — the scheduler sorts by them, nothing else.
type CostModel func(label string) uint64

// ConstCost estimates every job at the same cost c. Sharding then
// degrades to deterministic Key-order dealing — still correct, just not
// load-balanced.
func ConstCost(c uint64) CostModel {
	return func(string) uint64 { return c }
}

// CostFromSnapshot builds a cost model from a metrics snapshot: the
// estimate for label is the mean of the histogram named prefix+label
// (the per-benchmark "experiments.sim.wall_ns.<bench>" histograms the
// harness already records), falling back to `fallback` for labels with
// no recorded history. Taking a Snapshot decouples the model from live
// registry updates, so a sweep's ordering is fixed when it starts.
func CostFromSnapshot(snap metrics.Snapshot, prefix string, fallback uint64) CostModel {
	means := make(map[string]uint64, len(snap.Histograms))
	for name, hv := range snap.Histograms {
		if len(name) > len(prefix) && name[:len(prefix)] == prefix && hv.Count > 0 {
			means[name[len(prefix):]] = uint64(hv.Mean())
		}
	}
	return func(label string) uint64 {
		if m, ok := means[label]; ok && m > 0 {
			return m
		}
		return fallback
	}
}
