package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// valueJob returns a job whose result is a pure function of its key.
func valueJob(key string, cost uint64) Job {
	return Job{
		Key:  key,
		Cost: cost,
		Run: func(context.Context) (any, error) {
			return "v:" + key, nil
		},
	}
}

func TestRunZeroJobs(t *testing.T) {
	res, err := Run(context.Background(), nil, Options{Workers: 4})
	if err != nil {
		t.Fatalf("zero jobs: %v", err)
	}
	if len(res) != 0 {
		t.Fatalf("zero jobs produced %d results", len(res))
	}
}

func TestRunMoreWorkersThanJobs(t *testing.T) {
	jobs := []Job{valueJob("a", 3), valueJob("b", 2), valueJob("c", 1)}
	res, err := Run(context.Background(), jobs, Options{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for _, k := range []string{"a", "b", "c"} {
		r := res[k]
		if r.Err != nil || r.Value != "v:"+k {
			t.Errorf("job %s: value=%v err=%v", k, r.Value, r.Err)
		}
		if r.Worker < 0 {
			t.Errorf("job %s never assigned a worker", k)
		}
	}
}

// TestRunStealOrderPermutation runs the same job set at several worker
// counts — which permutes execution and steal order — and requires the
// result map to be identical every time. This is the scheduler-level
// half of the determinism guarantee; the harness-level half is the
// byte-identical Fingerprint test in internal/sim.
func TestRunStealOrderPermutation(t *testing.T) {
	const n = 50
	build := func() []Job {
		jobs := make([]Job, 0, n)
		for i := 0; i < n; i++ {
			jobs = append(jobs, valueJob(fmt.Sprintf("job-%02d", i), uint64(i%7)))
		}
		return jobs
	}
	want, err := Run(context.Background(), build(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := Run(context.Background(), build(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for k, w := range want {
			g := got[k]
			if g.Value != w.Value || (g.Err == nil) != (w.Err == nil) {
				t.Errorf("workers=%d key=%s: value %v vs %v", workers, k, g.Value, w.Value)
			}
		}
	}
}

func TestRunCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var startOnce sync.Once
	var ran atomic.Int32

	jobs := make([]Job, 0, 32)
	for i := 0; i < 32; i++ {
		jobs = append(jobs, Job{
			Key: fmt.Sprintf("slow-%02d", i),
			Run: func(ctx context.Context) (any, error) {
				startOnce.Do(func() { close(started) })
				ran.Add(1)
				<-ctx.Done() // block until cancelled, like a run honouring its deadline
				return nil, ctx.Err()
			},
		})
	}
	done := make(chan struct{})
	var res map[string]Result
	var err error
	go func() {
		res, err = Run(ctx, jobs, Options{Workers: 2})
		close(done)
	}()
	<-started
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) != 32 {
		t.Fatalf("got %d results, want 32 (cancelled jobs must still report)", len(res))
	}
	var cancelledUnstarted int
	for _, r := range res {
		if r.Worker == -1 {
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("unstarted job %s: err = %v, want Canceled", r.Key, r.Err)
			}
			cancelledUnstarted++
		}
	}
	if int(ran.Load())+cancelledUnstarted != 32 {
		t.Errorf("ran %d + unstarted %d != 32", ran.Load(), cancelledUnstarted)
	}
	if cancelledUnstarted == 0 {
		t.Error("cancellation mid-run left no unstarted jobs; test lost its race")
	}
}

func TestRunSingleFlightDuplicateKeys(t *testing.T) {
	var calls atomic.Int32
	job := Job{
		Key: "dup",
		Run: func(context.Context) (any, error) {
			calls.Add(1)
			return 42, nil
		},
	}
	res, err := Run(context.Background(), []Job{job, job, job, job}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("duplicate key ran %d times, want 1", n)
	}
	if res["dup"].Value != 42 {
		t.Fatalf("dup value = %v", res["dup"].Value)
	}
}

func TestRunJobErrorDoesNotAbort(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		{Key: "bad", Run: func(context.Context) (any, error) { return nil, boom }},
		valueJob("good", 1),
	}
	res, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatalf("job error escalated to run error: %v", err)
	}
	if !errors.Is(res["bad"].Err, boom) {
		t.Errorf("bad job err = %v", res["bad"].Err)
	}
	if res["good"].Err != nil || res["good"].Value != "v:good" {
		t.Errorf("good job: %+v", res["good"])
	}
}

func TestRunMetricsTelemetry(t *testing.T) {
	reg := metrics.New()
	jobs := make([]Job, 0, 20)
	for i := 0; i < 20; i++ {
		jobs = append(jobs, valueJob(fmt.Sprintf("m-%02d", i), uint64(i)))
	}
	if _, err := Run(context.Background(), jobs, Options{Workers: 4, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sched.jobs"]; got != 20 {
		t.Errorf("sched.jobs = %d, want 20", got)
	}
	if hv := snap.Histograms["sched.job_wall_ns"]; hv.Count != 20 {
		t.Errorf("sched.job_wall_ns count = %d, want 20", hv.Count)
	}
}

func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo[int](8)
	var calls atomic.Int32
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	vals := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := m.Do(context.Background(), "k", func(context.Context) (int, error) {
				calls.Add(1)
				<-release
				return 7, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			vals[i] = v
		}(i)
	}
	// Let the goroutines pile onto the key, then release the computation.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i, v := range vals {
		if v != 7 {
			t.Errorf("waiter %d got %d", i, v)
		}
	}
}

func TestMemoErrorsNotCached(t *testing.T) {
	m := NewMemo[int](8)
	var calls int
	fn := func(context.Context) (int, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("transient")
		}
		return 5, nil
	}
	if _, err := m.Do(context.Background(), "k", fn); err == nil {
		t.Fatal("first call should fail")
	}
	v, err := m.Do(context.Background(), "k", fn)
	if err != nil || v != 5 {
		t.Fatalf("retry: v=%d err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (error must not be cached)", calls)
	}
}

func TestMemoBound(t *testing.T) {
	m := NewMemo[int](4)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, err := m.Do(context.Background(), k, func(context.Context) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.Len(); n > 4 {
		t.Fatalf("memo holds %d entries, bound is 4", n)
	}
	// The most recent key must have survived LRU eviction.
	if v, ok := m.Get("k19"); !ok || v != 19 {
		t.Fatalf("most recent entry evicted: v=%d ok=%v", v, ok)
	}
	if _, ok := m.Get("k0"); ok {
		t.Fatal("oldest entry survived a full-bound churn")
	}
}

func TestMemoSlowCompletionSurvivesNewerInserts(t *testing.T) {
	// Regression: the LRU stamp used to be assigned only at insert, so a
	// long-running computation finished holding the oldest seq in the
	// cache and was the eviction victim the moment it completed. The
	// stamp must be refreshed on successful completion.
	m := NewMemo[int](2)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := m.Do(context.Background(), "slow", func(context.Context) (int, error) {
			<-release
			return 42, nil
		}); err != nil {
			t.Error(err)
		}
	}()
	// Wait for the slow computation to be in flight.
	for m.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	// A burst of newer inserts, every one outranking slow's insert stamp.
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("fast%d", i)
		if _, err := m.Do(context.Background(), k, func(context.Context) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	<-done
	if v, ok := m.Get("slow"); !ok || v != 42 {
		t.Fatalf("slow computation evicted on completion: v=%d ok=%v", v, ok)
	}
	if n := m.Len(); n > 2 { // bound still holds once everything completed
		t.Fatalf("memo holds %d entries, bound is 2", n)
	}
}

func TestMemoWaiterCancellation(t *testing.T) {
	m := NewMemo[int](4)
	release := make(chan struct{})
	go m.Do(context.Background(), "k", func(context.Context) (int, error) {
		<-release
		return 1, nil
	})
	time.Sleep(10 * time.Millisecond) // owner in flight
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.Do(ctx, "k", func(context.Context) (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v", err)
	}
	close(release)
}

func TestCostFromSnapshot(t *testing.T) {
	reg := metrics.New()
	reg.Histogram("experiments.sim.wall_ns.mcf").Observe(1000)
	reg.Histogram("experiments.sim.wall_ns.mcf").Observe(3000)
	reg.Histogram("experiments.sim.wall_ns.gzip").Observe(100)
	model := CostFromSnapshot(reg.Snapshot(), "experiments.sim.wall_ns.", 77)
	if c := model("mcf"); c != 2000 {
		t.Errorf("mcf cost = %d, want 2000 (histogram mean)", c)
	}
	if c := model("gzip"); c != 100 {
		t.Errorf("gzip cost = %d, want 100", c)
	}
	if c := model("unknown"); c != 77 {
		t.Errorf("unknown cost = %d, want fallback 77", c)
	}
}
