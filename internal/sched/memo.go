// The bounded single-flight result memo. The experiment harness layers
// it in front of its persistent run cache so that concurrent experiments
// — or racing Prewarm workers — never execute the same (benchmark,
// config, seed) simulation twice: the first caller computes, everyone
// else waits for (and shares) that result.

package sched

import (
	"context"
	"sync"
)

// memoEntry is one in-flight or completed computation.
type memoEntry[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
	seq  uint64 // recency stamp for bounded eviction
}

// Memo is a bounded, single-flight memoization cache. The zero value is
// not usable; call NewMemo. All methods are safe for concurrent use.
//
// Completed successful results are retained up to the bound and evicted
// least-recently-used beyond it; errors are never cached, so a failed
// key can be retried. In-flight entries are exempt from eviction — the
// bound applies to completed results only.
type Memo[V any] struct {
	mu      sync.Mutex
	max     int
	seq     uint64
	entries map[string]*memoEntry[V]
}

// NewMemo builds a memo retaining up to max completed results; max <= 0
// disables retention (pure in-flight deduplication).
func NewMemo[V any](max int) *Memo[V] {
	if max < 0 {
		max = 0
	}
	return &Memo[V]{max: max, entries: make(map[string]*memoEntry[V])}
}

// Len reports the number of resident entries (in-flight + completed).
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Do returns the memoized result for key, computing it with fn exactly
// once no matter how many goroutines ask concurrently. Callers that find
// the computation already in flight wait for it; a waiter whose ctx is
// cancelled gives up with ctx.Err() while the computation itself keeps
// running under the owner's ctx.
func (m *Memo[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		e.seq = m.nextSeq()
		m.mu.Unlock()
		select {
		case <-e.done:
			return e.val, e.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	e := &memoEntry[V]{done: make(chan struct{}), seq: m.nextSeq()}
	m.entries[key] = e
	m.mu.Unlock()

	e.val, e.err = fn(ctx)
	close(e.done)

	m.mu.Lock()
	if e.err != nil {
		// Never cache failures: a retry must recompute. Guard against the
		// slot having been replaced (possible once we deleted and another
		// goroutine re-inserted — it cannot happen before this point, but
		// the check is cheap and keeps the invariant local).
		if m.entries[key] == e {
			delete(m.entries, key)
		}
	} else {
		// Refresh recency before evicting: the entry still carries its
		// insert-time stamp, which is stale by however long the
		// computation ran — without this a slow computation is the LRU
		// victim the instant it completes if anything was touched
		// meanwhile.
		e.seq = m.nextSeq()
		m.evictLocked()
	}
	m.mu.Unlock()
	return e.val, e.err
}

// Get returns the completed result cached under key, if any. In-flight
// entries report absent (Get never blocks).
func (m *Memo[V]) Get(key string) (V, bool) {
	m.mu.Lock()
	e, ok := m.entries[key]
	m.mu.Unlock()
	if !ok {
		var zero V
		return zero, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			var zero V
			return zero, false
		}
		return e.val, true
	default:
		var zero V
		return zero, false
	}
}

// nextSeq must be called with mu held.
func (m *Memo[V]) nextSeq() uint64 { m.seq++; return m.seq }

// evictLocked drops least-recently-used COMPLETED entries until the
// retention bound holds. In-flight entries don't count against the bound
// and are never evicted. A linear scan per eviction is fine at this
// cache's scale (hundreds of entries, evictions rare).
func (m *Memo[V]) evictLocked() {
	if m.max <= 0 {
		for k, e := range m.entries {
			if completed(e.done) {
				delete(m.entries, k)
			}
		}
		return
	}
	for {
		completedCount := 0
		oldestKey := ""
		var oldestSeq uint64
		for k, e := range m.entries {
			if !completed(e.done) {
				continue
			}
			completedCount++
			if oldestKey == "" || e.seq < oldestSeq {
				oldestKey, oldestSeq = k, e.seq
			}
		}
		if completedCount <= m.max {
			return
		}
		delete(m.entries, oldestKey)
	}
}

func completed(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}
