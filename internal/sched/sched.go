// Package sched is the experiment harness's work-stealing scheduler.
//
// A simulation sweep is a bag of independent, deterministic jobs whose
// durations span two orders of magnitude (a 2M-instruction mcf run is
// ~30x a no-prefetch gzip run). A fixed worker pool fed from one channel
// — the previous harness design — leaves workers idle at the tail: the
// last long job lands on a busy worker while the rest have drained.
// This package replaces it with shard-aware work stealing:
//
//   - Jobs are sorted longest-first by a caller-supplied cost estimate
//     (see CostModel for the wall-time-histogram-backed estimator) and
//     dealt round-robin into per-worker deques, so every shard starts
//     with a balanced, longest-first work list.
//   - Each worker pops from the front of its own deque (its next-longest
//     job). A worker whose deque is empty steals from the BACK of a
//     victim's deque — the victim's cheapest queued job — scanning
//     victims round-robin from its own index. Stealing cheap jobs keeps
//     the expensive ones with the shard that cost-ordering assigned them
//     and minimizes the tail imbalance a steal can introduce.
//   - Cancellation is context-based: workers stop dequeuing as soon as
//     ctx is cancelled, in-flight jobs receive the cancelled ctx, and
//     never-started jobs report ctx.Err() as their result.
//
// Determinism: the scheduler guarantees nothing about execution order —
// steal interleavings are racy by design — so it must only ever be used
// for jobs that are independent and deterministic. Results are keyed by
// Job.Key, not by completion order; two runs over the same jobs produce
// identical result maps regardless of worker count or steal order. The
// experiments harness pins this with byte-identical fingerprint tests
// across 1, 4, and 8 workers (see docs/SCHEDULER.md).
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Job is one unit of independent, deterministic work.
type Job struct {
	// Key identifies the job. Jobs submitted with the same Key are
	// single-flighted: the first occurrence runs, later occurrences share
	// its result. Keys also name results in the returned map, so they
	// must be unique per distinct piece of work.
	Key string
	// Cost is the scheduler's relative wall-time estimate (any unit;
	// only the ordering matters). Zero is valid: jobs then shard in Key
	// order, which is deterministic but not load-balanced.
	Cost uint64
	// Run does the work. It receives the scheduler's context and must
	// return promptly once the context is cancelled.
	Run func(ctx context.Context) (any, error)
}

// Result is the outcome of one job.
type Result struct {
	Key   string
	Value any
	Err   error
	// Wall is the job's execution wall time (zero if never started).
	Wall time.Duration
	// Worker is the index of the worker that executed the job; -1 if the
	// job never started (cancellation).
	Worker int
	// Stolen reports whether the job ran on a worker other than the one
	// its shard assignment placed it on.
	Stolen bool
}

// Options configure a Run.
type Options struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, receives scheduler telemetry: "sched.jobs",
	// "sched.steals", "sched.cancelled" counters and a "sched.job_wall_ns"
	// histogram. Nil-safe, like every registry in this repo.
	Metrics *metrics.Registry
}

// deque is one worker's job list. front() is the owner's end (its
// next-longest job); stealBack() is the thief's end (the victim's
// cheapest queued job). A mutex per deque is ample: jobs are whole
// simulations, so the lock is touched a few thousand times per sweep,
// never inside a hot loop.
type deque struct {
	mu   sync.Mutex
	jobs []int // indices into the deduplicated job slice
	head int
}

// popFront removes the owner-end job, returning -1 when empty.
func (d *deque) popFront() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.jobs) {
		return -1
	}
	j := d.jobs[d.head]
	d.head++
	return j
}

// stealBack removes the thief-end job, returning -1 when empty.
func (d *deque) stealBack() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.jobs) {
		return -1
	}
	j := d.jobs[len(d.jobs)-1]
	d.jobs = d.jobs[:len(d.jobs)-1]
	return j
}

// drain removes and returns every remaining job (cancellation sweep).
func (d *deque) drain() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	rest := d.jobs[d.head:]
	d.jobs = nil
	d.head = 0
	return rest
}

// Run executes the jobs on a work-stealing pool and returns one Result
// per distinct Key. It blocks until every started job has finished; when
// ctx is cancelled it stops starting jobs, marks the never-started ones
// with ctx.Err(), and returns ctx.Err() alongside the partial results.
// Job-level failures do NOT abort the run — they are reported in the
// per-job Result.Err and the caller decides; only ctx ends a sweep early.
func Run(ctx context.Context, jobs []Job, opts Options) (map[string]Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Single-flight by Key: the first occurrence is scheduled, duplicates
	// alias its result slot.
	unique := make([]Job, 0, len(jobs))
	index := make(map[string]int, len(jobs))
	for _, j := range jobs {
		if j.Run == nil {
			return nil, fmt.Errorf("sched: job %q has a nil Run", j.Key)
		}
		if _, dup := index[j.Key]; dup {
			continue
		}
		index[j.Key] = len(unique)
		unique = append(unique, j)
	}

	results := make([]Result, len(unique))
	for i := range results {
		results[i] = Result{Key: unique[i].Key, Worker: -1}
	}
	if len(unique) == 0 {
		return map[string]Result{}, ctx.Err()
	}
	if workers > len(unique) {
		workers = len(unique)
	}

	// Shard: longest-first, ties broken by Key so the deal is
	// deterministic, then round-robin across workers.
	order := make([]int, len(unique))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := unique[order[a]], unique[order[b]]
		if ja.Cost != jb.Cost {
			return ja.Cost > jb.Cost
		}
		return ja.Key < jb.Key
	})
	deques := make([]*deque, workers)
	for w := range deques {
		deques[w] = &deque{}
	}
	home := make([]int, len(unique))
	for pos, idx := range order {
		w := pos % workers
		deques[w].jobs = append(deques[w].jobs, idx)
		home[idx] = w
	}

	var steals, cancelled, executed atomic.Uint64
	wallHist := opts.Metrics.Histogram("sched.job_wall_ns")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for ctx.Err() == nil {
				idx := deques[self].popFront()
				stolen := false
				if idx < 0 {
					// Own deque empty: scan victims round-robin from the
					// right neighbour, stealing their cheapest queued job.
					for k := 1; k < workers && idx < 0; k++ {
						idx = deques[(self+k)%workers].stealBack()
					}
					if idx < 0 {
						return // every deque empty; running jobs belong to their executors
					}
					stolen = true
					steals.Add(1)
				}
				job := unique[idx]
				start := time.Now()
				v, err := job.Run(ctx)
				wall := time.Since(start)
				wallHist.Observe(uint64(wall))
				executed.Add(1)
				results[idx] = Result{
					Key: job.Key, Value: v, Err: err,
					Wall: wall, Worker: self, Stolen: stolen && home[idx] != self,
				}
			}
		}(w)
	}
	wg.Wait()

	// Cancellation sweep: anything still queued never ran.
	if err := ctx.Err(); err != nil {
		for _, d := range deques {
			for _, idx := range d.drain() {
				results[idx].Err = err
				cancelled.Add(1)
			}
		}
	}

	opts.Metrics.Counter("sched.jobs").Add(executed.Load())
	opts.Metrics.Counter("sched.steals").Add(steals.Load())
	opts.Metrics.Counter("sched.cancelled").Add(cancelled.Load())

	out := make(map[string]Result, len(unique))
	for _, r := range results {
		out[r.Key] = r
	}
	return out, ctx.Err()
}
