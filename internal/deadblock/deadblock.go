// Package deadblock implements a dead-block predictor in the spirit of
// Lai, Fide and Falsafi, "Dead-block Prediction and Dead-block
// Correlating Prefetchers" (the paper's reference [11]), adapted as a
// pollution-control baseline.
//
// Lai et al. attack the same problem as the pollution filter from the
// opposite side: instead of asking "will this prefetched line be used?",
// they ask "is the line this prefetch would *displace* already dead?" and
// let prefetches replace only dead lines, so useful data is never evicted
// early. This package provides:
//
//   - Predictor: a last-touch predictor. Every L1 line carries a
//     signature — a hash of the PC of its most recent demand access
//     (cache.Line.DeadSig). When a line is evicted without any further
//     access, the signature that touched it last is trained "dead after
//     this PC"; when the line is accessed again, its previous signature
//     is trained "still live". A line whose current signature predicts
//     dead is considered safe to replace.
//
//   - Gate: the admission rule the hierarchy consults before enqueueing a
//     prefetch — allow iff the target set has a free frame or its victim
//     is predicted dead.
//
// The predictor reuses the same 2-bit saturating counter fabric as the
// pollution filter's history table, so the two baselines differ only in
// what they predict, not in how much hardware they spend.
package deadblock

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/predictor"
)

// Predictor is the last-touch dead-block predictor.
type Predictor struct {
	counters []predictor.SatCounter
	mask     uint64

	// Stats.
	TrainDead uint64 // evictions of never-re-touched lines
	TrainLive uint64 // re-accesses that refuted a pending signature
	Queries   uint64
	DeadPreds uint64
}

// New allocates a predictor with the given power-of-two entry count.
// Counters start at strongly-live (0): a signature must demonstrate
// dead-after behaviour before the gate trusts it, mirroring the pollution
// filter's allow-first-touch stance (here: protect-first-touch).
func New(entries int) (*Predictor, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("deadblock: entries must be a positive power of two, got %d", entries)
	}
	return &Predictor{
		counters: make([]predictor.SatCounter, entries),
		mask:     uint64(entries - 1),
	}, nil
}

// Entries returns the table length.
func (p *Predictor) Entries() int { return len(p.counters) }

// sig hashes an access PC into a table signature. The low instruction
// bits are stripped; multiplicative mixing spreads call-dense code.
func (p *Predictor) sig(pc uint64) uint64 {
	return ((pc >> 2) * 0x9e3779b97f4a7c15) & p.mask
}

// OnAccess records a demand access to a resident line: the line's
// previous signature (if any) evidently was not its last touch, so it
// trains live; the new access becomes the pending last-touch candidate.
func (p *Predictor) OnAccess(line *cache.Line, pc uint64) {
	if line.DeadSig != 0 {
		idx := (line.DeadSig - 1) & p.mask
		p.counters[idx] = p.counters[idx].Dec()
		p.TrainLive++
	}
	// Store sig+1 so that zero can mean "none recorded".
	line.DeadSig = p.sig(pc) + 1
}

// OnFill seeds a freshly installed line's signature from the filling
// access's PC.
func (p *Predictor) OnFill(line *cache.Line, pc uint64) {
	line.DeadSig = p.sig(pc) + 1
}

// OnEvict trains the evicted line's pending signature as a last touch.
func (p *Predictor) OnEvict(line cache.Line) {
	if line.DeadSig == 0 {
		return
	}
	idx := (line.DeadSig - 1) & p.mask
	p.counters[idx] = p.counters[idx].Inc()
	p.TrainDead++
}

// PredictDead reports whether the line's current signature predicts that
// its last access has already happened (counter >= 2, the same threshold
// convention as the pollution filter).
func (p *Predictor) PredictDead(line *cache.Line) bool {
	p.Queries++
	if line.DeadSig == 0 {
		return false // never touched since fill: treat as live
	}
	idx := (line.DeadSig - 1) & p.mask
	dead := p.counters[idx] >= predictor.WeakTaken
	if dead {
		p.DeadPreds++
	}
	return dead
}

// AllowPrefetch is the admission gate: a prefetch for lineAddr may
// proceed iff installing it would not evict a live line from l1.
func (p *Predictor) AllowPrefetch(l1 *cache.Cache, lineAddr uint64) bool {
	victim, hasVictim := l1.PeekVictim(lineAddr)
	if !hasVictim {
		return true // free frame (or duplicate): nothing useful displaced
	}
	return p.PredictDead(victim)
}

// ResetStats zeroes the counters' statistics (warmup boundary); the
// prediction table stays warm.
func (p *Predictor) ResetStats() {
	p.TrainDead, p.TrainLive, p.Queries, p.DeadPreds = 0, 0, 0, 0
}
