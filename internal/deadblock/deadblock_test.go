package deadblock

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/xrand"
)

func mkL1(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(config.Default().L1, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 3, -8} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) should fail", n)
		}
	}
	p, err := New(4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entries() != 4096 {
		t.Fatalf("entries = %d", p.Entries())
	}
}

func TestFreshLinePredictsLive(t *testing.T) {
	p, _ := New(256)
	var line cache.Line
	if p.PredictDead(&line) {
		t.Fatal("a line with no signature must be presumed live")
	}
}

func TestLastTouchLearning(t *testing.T) {
	p, _ := New(256)
	const pc = 0x400010
	// Pattern: a PC whose touch is always the last before eviction.
	for i := 0; i < 3; i++ {
		var line cache.Line
		p.OnFill(&line, pc)
		p.OnEvict(line)
	}
	var line cache.Line
	p.OnFill(&line, pc)
	if !p.PredictDead(&line) {
		t.Fatal("a repeatedly-last PC should predict dead")
	}
}

func TestReAccessRefutesDeath(t *testing.T) {
	p, _ := New(256)
	const pc = 0x400010
	// Train the signature dead…
	for i := 0; i < 3; i++ {
		var line cache.Line
		p.OnFill(&line, pc)
		p.OnEvict(line)
	}
	// …then observe re-accesses after the same PC: trains live again.
	for i := 0; i < 3; i++ {
		var line cache.Line
		p.OnFill(&line, pc)
		p.OnAccess(&line, pc) // previous sig (same pc) refuted
	}
	var line cache.Line
	p.OnFill(&line, pc)
	if p.PredictDead(&line) {
		t.Fatal("refuted signature should predict live again")
	}
	if p.TrainLive != 3 {
		t.Fatalf("TrainLive = %d", p.TrainLive)
	}
}

func TestOnAccessRotatesSignature(t *testing.T) {
	p, _ := New(256)
	var line cache.Line
	p.OnFill(&line, 0x400010)
	sig1 := line.DeadSig
	p.OnAccess(&line, 0x400020)
	if line.DeadSig == sig1 {
		t.Fatal("a new access must install a new signature")
	}
}

func TestEvictWithoutSignatureIsNoop(t *testing.T) {
	p, _ := New(256)
	p.OnEvict(cache.Line{})
	if p.TrainDead != 0 {
		t.Fatal("unsigned eviction must not train")
	}
}

func TestAllowPrefetchFreeFrame(t *testing.T) {
	p, _ := New(256)
	l1 := mkL1(t)
	if !p.AllowPrefetch(l1, 42) {
		t.Fatal("empty set: prefetch must be allowed")
	}
}

func TestAllowPrefetchLiveVictim(t *testing.T) {
	p, _ := New(256)
	l1 := mkL1(t)
	line, _, _ := l1.Insert(42) // direct-mapped: sole occupant of its set
	p.OnFill(line, 0x400010)    // untrained signature: presumed live
	conflicting := uint64(42 + 256)
	if p.AllowPrefetch(l1, conflicting) {
		t.Fatal("live victim: prefetch must be gated off")
	}
}

func TestAllowPrefetchDeadVictim(t *testing.T) {
	p, _ := New(256)
	const pc = 0x400010
	for i := 0; i < 3; i++ {
		var line cache.Line
		p.OnFill(&line, pc)
		p.OnEvict(line)
	}
	l1 := mkL1(t)
	line, _, _ := l1.Insert(42)
	p.OnFill(line, pc) // dead-trained signature
	if !p.AllowPrefetch(l1, 42+256) {
		t.Fatal("dead victim: prefetch must pass")
	}
	if p.DeadPreds == 0 {
		t.Fatal("dead prediction should be counted")
	}
}

func TestResetStatsKeepsTable(t *testing.T) {
	p, _ := New(256)
	const pc = 0x400010
	for i := 0; i < 3; i++ {
		var line cache.Line
		p.OnFill(&line, pc)
		p.OnEvict(line)
	}
	p.ResetStats()
	if p.TrainDead != 0 || p.Queries != 0 {
		t.Fatal("stats should reset")
	}
	var line cache.Line
	p.OnFill(&line, pc)
	if !p.PredictDead(&line) {
		t.Fatal("prediction table must stay warm across reset")
	}
}
