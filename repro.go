// Package repro is a from-scratch Go reproduction of
//
//	Xiaotong Zhuang and Hsien-Hsin S. Lee,
//	"A Hardware-based Cache Pollution Filtering Mechanism for
//	 Aggressive Prefetches", ICPP 2003.
//
// It bundles a trace-driven out-of-order CPU and cache-hierarchy
// simulator, the paper's two hardware prefetchers (tagged next-sequence
// and shadow-directory prefetching), software-prefetch support, the
// PA-based and PC-based pollution filters that are the paper's
// contribution, the baselines it compares against (no filtering, a
// static profile-driven filter, a dead-block gate, a dedicated prefetch
// buffer, a victim cache), ten synthetic benchmark models standing in
// for the paper's Olden/SPEC95/SPEC2000 workloads plus three
// micro-workloads, and an experiment harness that regenerates every
// table and figure of the evaluation along with this repo's extension
// studies.
//
// # Quickstart
//
//	cfg := repro.DefaultConfig().WithFilter(repro.FilterPC)
//	run, err := repro.Simulate(repro.Options{
//		Benchmark: "mcf",
//		Config:    cfg,
//	})
//	if err != nil { ... }
//	fmt.Printf("IPC %.2f, bad prefetches %d\n", run.IPC(), run.Prefetches.Bad)
//
// See the examples/ directory for runnable programs and cmd/ for the
// CLI tools (pfsim, pfexperiments, pftrace).
package repro

import (
	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/filter"
	"repro/internal/isa"
	"repro/internal/lint"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/taxonomy"
	"repro/internal/workload"
)

// Re-exported types: the public API surface. Aliases keep the
// implementation in internal packages while giving users stable names.
type (
	// Config is the full machine description (Table 1 parameters).
	Config = config.Config
	// CacheConfig describes one cache level.
	CacheConfig = config.CacheConfig
	// FilterKind selects the pollution-filter variant.
	FilterKind = config.FilterKind
	// FilterConfig parameterizes one pollution-filter backend; feed it
	// to NewFilterBackend or embed it in a Config.
	FilterConfig = config.FilterConfig
	// Options names what Simulate should run.
	Options = sim.Options
	// Run holds one simulation's measurements.
	Run = stats.Run
	// Prefetches is the good/bad prefetch classification of a run.
	Prefetches = stats.Prefetches
	// Filter is the pollution-filter interface; implement it to plug a
	// custom filter into the simulator via Options.Filter.
	Filter = core.Filter
	// FilterRequest is the query a Filter answers per in-flight prefetch.
	FilterRequest = core.Request
	// FilterFeedback is the eviction-time training signal.
	FilterFeedback = core.Feedback
	// Record is one dynamic instruction of a trace.
	Record = isa.Record
	// Source produces a trace record stream.
	Source = isa.Source
	// Benchmark describes one workload model.
	Benchmark = workload.Spec
	// Experiment regenerates one paper table/figure.
	Experiment = experiments.Experiment
	// ExperimentParams control experiment runs.
	ExperimentParams = experiments.Params
	// ResultTable is the rendered output of an experiment.
	ResultTable = report.Table
	// TaxonomyCounts is the full Srinivasan prefetch classification
	// produced when Options.Taxonomy is set.
	TaxonomyCounts = taxonomy.Counts
	// TaxonomyClass names one taxonomy category.
	TaxonomyClass = taxonomy.Class
)

// Taxonomy classes (see internal/taxonomy).
const (
	TaxUseful      = taxonomy.Useful
	TaxPolluting   = taxonomy.Polluting
	TaxConflicting = taxonomy.Conflicting
	TaxUseless     = taxonomy.Useless
)

// Filter kinds (see config). FilterPA/FilterPC are the paper's
// contribution; perceptron, bloom, and tournament are the learned
// backends from the internal/filter zoo (see EXPERIMENTS.md).
const (
	FilterNone       = config.FilterNone
	FilterPA         = config.FilterPA
	FilterPC         = config.FilterPC
	FilterStatic     = config.FilterStatic
	FilterAdaptive   = config.FilterAdaptive
	FilterDeadBlock  = config.FilterDeadBlock
	FilterPerceptron = config.FilterPerceptron
	FilterBloom      = config.FilterBloom
	FilterTournament = config.FilterTournament
)

// FilterBackends returns every backend registered in the pollution-
// filter zoo (internal/filter), sorted, including aliases such as
// "table-pa".
func FilterBackends() []string { return filter.Kinds() }

// SweepableFilterBackends returns the backends a head-to-head sweep can
// run directly — every registered kind except "static", which needs a
// profiling pass (use SimulateStatic).
func SweepableFilterBackends() []string { return filter.Sweepable() }

// NewFilterBackend constructs a filter from a validated FilterConfig via
// the registry, e.g. DefaultConfig().Filter with Kind overridden.
func NewFilterBackend(cfg config.FilterConfig) (Filter, error) { return filter.New(cfg) }

// DefaultConfig returns the paper's Table 1 machine: 8KB direct-mapped
// 1-cycle 3-port L1, 512KB 4-way L2, 150-cycle memory, NSP+SDP+software
// prefetching, no filtering.
func DefaultConfig() Config { return config.Default() }

// Config16K returns the §5.2.1 16KB-L1 comparison machine.
func Config16K() Config { return config.Default16K() }

// Config32K returns the §5.2.2 32KB-L1 (4-cycle) machine.
func Config32K() Config { return config.Default32K() }

// Simulate runs one simulation to completion and returns its
// measurements.
func Simulate(opts Options) (Run, error) { return sim.Run(opts) }

// SimulateStatic runs the two-phase static-filter baseline: a profiling
// pass followed by a measured pass with the frozen profile.
func SimulateStatic(opts Options, minGoodFrac float64) (Run, error) {
	return sim.RunStatic(opts, core.PAKey, minGoodFrac)
}

// Benchmarks returns every workload model: the paper's ten plus the
// micro models (stream, random, phased) this repo adds.
func Benchmarks() []Benchmark { return workload.All() }

// PaperBenchmarks returns only the paper's ten models, in Table 2 order.
func PaperBenchmarks() []Benchmark { return workload.Paper() }

// BenchmarkNames returns every model name.
func BenchmarkNames() []string { return workload.Names() }

// Experiments returns every regenerable paper artifact in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one experiment ("table2", "fig6", …).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// DefaultExperimentParams returns the harness defaults (2M measured
// instructions after 1M warmup, seed 1).
func DefaultExperimentParams() ExperimentParams { return experiments.DefaultParams() }

// NewPAFilter builds the paper's Per-Address pollution filter with the
// given history-table entry count (power of two).
func NewPAFilter(entries int) (Filter, error) {
	return core.NewPA(entries, 2, 2, core.IndexDirect)
}

// NewPCFilter builds the paper's Program-Counter pollution filter.
func NewPCFilter(entries int) (Filter, error) {
	return core.NewPC(entries, 2, 2, core.IndexDirect)
}

// NewHashedPAFilter builds a PA filter with multiplicative hash indexing
// instead of the paper's direct indexing (an aliasing ablation).
func NewHashedPAFilter(entries int) (Filter, error) {
	return core.NewPA(entries, 2, 2, core.IndexHash)
}

// NewTaggedPAFilter builds a PA filter whose history table carries
// partial tags (an aliasing-mitigation ablation; see internal/core).
func NewTaggedPAFilter(entries int, tagBits uint) (Filter, error) {
	return core.NewTaggedPA(entries, tagBits)
}

// NewTaggedPCFilter is the PC-keyed tagged variant.
func NewTaggedPCFilter(entries int, tagBits uint) (Filter, error) {
	return core.NewTaggedPC(entries, tagBits)
}

// NewCustomFilter builds a history-table filter with a caller-supplied
// key function, for design-space exploration.
func NewCustomFilter(name string, key func(lineAddr, triggerPC uint64) uint64, entries int) (Filter, error) {
	return core.NewTableFilter(name, key, entries, 2, 2, core.IndexDirect)
}

// SliceSource adapts a pre-built record slice into a trace Source.
func SliceSource(recs []Record) Source { return isa.NewSliceSource(recs) }

// InterleaveSource round-robins several traces on a context-switch
// quantum (multiprogramming studies).
func InterleaveSource(quantum int64, srcs ...Source) (Source, error) {
	return isa.NewInterleaveSource(quantum, srcs...)
}

// LocalityProfile is a trace's reuse-distance analysis.
type LocalityProfile = analysis.Profile

// AnalyzeTrace computes the reuse-distance profile of up to max records
// from a trace (max <= 0 analyzes everything; see internal/analysis).
func AnalyzeTrace(src Source, lineBytes int, max int64) (LocalityProfile, error) {
	return analysis.AnalyzeSource(src, lineBytes, max)
}

// WriteTrace and ReadTrace round-trip traces through the binary PFTRACE1
// format; see cmd/pftrace for the file tool.
var (
	WriteTrace = isa.WriteTrace
	ReadTrace  = isa.ReadTrace
)

// Lint runs the repository's static-analysis suite (internal/lint, the
// engine behind cmd/pflint) over the packages matching patterns, resolved
// relative to dir; no patterns means "./...". It returns the surviving
// findings as "file:line:col: rule: message" strings, empty when the tree
// is clean. See docs/LINTING.md for the rules.
func Lint(dir string, patterns ...string) ([]string, error) {
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.String()
	}
	return out, nil
}
