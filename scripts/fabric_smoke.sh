#!/usr/bin/env bash
# End-to-end smoke of the distributed sweep fabric (docs/FABRIC.md).
#
# Topology: two worker daemons and one coordinator sharing a CAS
# directory, plus an independent standalone daemon as the determinism
# oracle. The script
#
#   1. streams a 16-cell sweep through the coordinator and SIGKILLs one
#      worker right after the first NDJSON result line — the sweep must
#      still complete with zero errors on the survivor;
#   2. asserts the sweep fingerprint against the committed pin
#      (scripts/fabric_smoke.fingerprint) and against the same sweep on
#      the standalone daemon — sharded and single-node must agree byte
#      for byte;
#   3. re-runs the sweep and asserts every cell answers from the CAS:
#      cas_hits == unique, and the surviving worker performs zero new
#      simulations (its experiments_cache_misses counter is unchanged).
#
# Self-contained: builds pfserved, uses only loopback ports and a temp
# dir, and cleans up on exit. Requires curl and jq.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_COORD=8094
PORT_W1=8095
PORT_W2=8096
PORT_SOLO=8097

TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for p in ${PIDS[@]+"${PIDS[@]}"}; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

die() { echo "fabric-smoke: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  die "127.0.0.1:$1 never became healthy"
}

misses() { # experiments_cache_misses on a daemon, 0 if not yet emitted
  local v
  v=$(curl -sf "http://127.0.0.1:$1/metrics" | awk '/^experiments_cache_misses /{print $2}')
  echo "${v:-0}"
}

go build -o "$TMP/pfserved" ./cmd/pfserved

"$TMP/pfserved" -role worker -addr 127.0.0.1:$PORT_W1 -cas-dir "$TMP/cas" &
W1=$!
PIDS+=("$W1")
"$TMP/pfserved" -role worker -addr 127.0.0.1:$PORT_W2 -cas-dir "$TMP/cas" &
PIDS+=("$!")
wait_healthy $PORT_W1
wait_healthy $PORT_W2

"$TMP/pfserved" -role coordinator -addr 127.0.0.1:$PORT_COORD -cas-dir "$TMP/cas" \
  -workers "http://127.0.0.1:$PORT_W1,http://127.0.0.1:$PORT_W2" &
PIDS+=("$!")
"$TMP/pfserved" -role standalone -addr 127.0.0.1:$PORT_SOLO &
PIDS+=("$!")
wait_healthy $PORT_COORD
wait_healthy $PORT_SOLO

# 8 benchmarks x 2 filters = 16 cells; big enough that the sweep is
# still in flight when the kill lands one result into the stream.
SWEEP='{"benchmarks":["mcf","gzip","gcc","bh","em3d","perimeter","ijpeg","gap"],
        "filters":["none","pa"],"instructions":200000,"warmup":50000,"seed":1'
CELLS=16

# --- Run 1: streaming sweep, SIGKILL worker 1 after the first result.
echo "fabric-smoke: streaming sweep, killing worker $W1 after first result"
curl -sN "http://127.0.0.1:$PORT_COORD/v1/sweep" -d "$SWEEP,\"stream\":true}" | {
  IFS= read -r first || exit 1
  printf '%s\n' "$first"
  kill -9 "$W1" 2>/dev/null || true
  cat
} >"$TMP/stream.ndjson" || die "streaming sweep failed"

RESULTS=$(grep -c '"type":"result"' "$TMP/stream.ndjson" || true)
[ "$RESULTS" -eq "$CELLS" ] || die "stream carried $RESULTS results, want $CELLS"
SUMMARY=$(grep '"type":"summary"' "$TMP/stream.ndjson")
echo "$SUMMARY" | jq -e \
  ".summary.errors == 0 and .summary.unique == $CELLS and (has(\"error\") | not)" >/dev/null ||
  die "summary reports errors despite re-dealing: $SUMMARY"
FP=$(echo "$SUMMARY" | jq -r .summary.fingerprint)
[ -n "$FP" ] && [ "$FP" != null ] || die "summary has no fingerprint"

# The coordinator must have noticed the corpse and re-dealt its cells.
curl -sf "http://127.0.0.1:$PORT_COORD/metrics" >"$TMP/coord.metrics"
grep -Eq '^fabric_workers_dead 1$' "$TMP/coord.metrics" ||
  die "coordinator never declared the killed worker dead"

# --- Determinism: pinned fingerprint, and sharded == standalone.
PIN=$(cat scripts/fabric_smoke.fingerprint)
[ "$FP" = "$PIN" ] || die "sweep fingerprint $FP != pinned $PIN"
FP_SOLO=$(curl -sf "http://127.0.0.1:$PORT_SOLO/v1/sweep" -d "$SWEEP}" | jq -r .fingerprint)
[ "$FP" = "$FP_SOLO" ] || die "sharded fingerprint $FP != standalone $FP_SOLO"

# --- Run 2: identical sweep answers entirely from the CAS — no cell
# reaches a worker, the survivor simulates nothing new.
MISSES_BEFORE=$(misses $PORT_W2)
R2=$(curl -sf "http://127.0.0.1:$PORT_COORD/v1/sweep" -d "$SWEEP}")
echo "$R2" | jq -e \
  ".errors == 0 and .cas_hits == $CELLS and .fingerprint == \"$FP\"" >/dev/null ||
  die "repeat sweep was not served from the CAS: $R2"
MISSES_AFTER=$(misses $PORT_W2)
[ "$MISSES_BEFORE" = "$MISSES_AFTER" ] ||
  die "repeat sweep simulated: worker misses $MISSES_BEFORE -> $MISSES_AFTER"

echo "fabric-smoke: OK ($CELLS cells, fingerprint $FP, repeat run 100% CAS)"
